//! Byzantine-fault-tolerant **replicated state machines** on top of
//! atomic broadcast — the application pattern the paper's introduction
//! motivates ("consensus … has been shown equivalent to several other
//! distributed problems, such as state machine replication [23]").
//!
//! A [`Replica`] owns a [`Node`] and a deterministic state value; every
//! command submitted anywhere in the group is applied at every replica in
//! the same (FIFO-upgraded) total order, so all replicas stay in the same
//! state with no leader and up to `f` arbitrary faults.
//!
//! * [`Replica::submit`] — fire-and-forget command submission;
//! * [`Replica::submit_sync`] — blocks until the *own* command has been
//!   applied locally (at which point every correct replica applies it at
//!   the same position);
//! * [`Replica::read`] — a local read of the current state (sequentially
//!   consistent: it sees a prefix of the agreed history);
//! * [`Replica::barrier`] — a linearization point: broadcasts a marker
//!   and blocks until it is applied, after which a [`Replica::read`]
//!   reflects everything ordered before the barrier.

use crate::ab::MsgId;
use crate::node::{Node, NodeError};
use crate::ProcessId;
use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Internal command framing: user commands vs barrier markers.
const TAG_USER: u8 = 1;
const TAG_MARKER: u8 = 2;

/// Tracks which of our own commands have been applied, compactly
/// (watermark + sparse set over our sequential rbids).
#[derive(Debug, Default)]
struct OwnApplied {
    watermark: u64,
    sparse: BTreeSet<u64>,
}

impl OwnApplied {
    fn insert(&mut self, rbid: u64) {
        if rbid < self.watermark {
            return;
        }
        self.sparse.insert(rbid);
        while self.sparse.remove(&self.watermark) {
            self.watermark += 1;
        }
    }

    fn contains(&self, rbid: u64) -> bool {
        rbid < self.watermark || self.sparse.contains(&rbid)
    }
}

struct Shared<S> {
    state: Mutex<S>,
    applied: Mutex<OwnApplied>,
    applied_cv: Condvar,
    /// Set when the applier thread exits (node shut down): no further
    /// deliveries will ever be applied.
    stopped: std::sync::atomic::AtomicBool,
}

/// One replica of a deterministic state machine.
///
/// # Example
///
/// A replicated counter over an in-memory cluster:
///
/// ```
/// use ritas::node::{Node, SessionConfig};
/// use ritas::rsm::Replica;
/// use bytes::Bytes;
///
/// let nodes = Node::cluster(SessionConfig::new(4)?)?;
/// let replicas: Vec<_> = nodes
///     .into_iter()
///     .map(|n| Replica::new(n, 0u64, |count, _from, cmd| {
///         if cmd == b"incr" {
///             *count += 1;
///         }
///     }))
///     .collect();
/// // Submit from one replica; the command applies at every replica.
/// replicas[2].submit_sync(Bytes::from_static(b"incr"))?;
/// assert_eq!(replicas[2].read(|c| *c), 1);
/// # for r in &replicas { r.shutdown(); }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Replica<S: Send + 'static> {
    node: Arc<Node>,
    shared: Arc<Shared<S>>,
    applier: Option<JoinHandle<()>>,
}

impl<S: Send + 'static> core::fmt::Debug for Replica<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.node.id())
            .finish_non_exhaustive()
    }
}

impl<S: Send + 'static> Replica<S> {
    /// Wraps `node` into a replica of `initial` state. `apply` must be
    /// **deterministic** — it runs at every replica with the same command
    /// sequence; any divergence (clocks, randomness, iteration order over
    /// unordered maps) forks the replicated state.
    pub fn new(
        node: Node,
        initial: S,
        mut apply: impl FnMut(&mut S, ProcessId, &[u8]) + Send + 'static,
    ) -> Self {
        let node = Arc::new(node);
        let shared = Arc::new(Shared {
            state: Mutex::new(initial),
            applied: Mutex::new(OwnApplied::default()),
            applied_cv: Condvar::new(),
            stopped: std::sync::atomic::AtomicBool::new(false),
        });
        let me = node.id();
        let applier = {
            let node = Arc::clone(&node);
            let shared = Arc::clone(&shared);
            let n = node.group_size();
            std::thread::spawn(move || {
                let mut fifo = crate::fifo::FifoOrder::new(n);
                loop {
                    let delivery = match node.atomic_recv() {
                        Ok(d) => d,
                        Err(_) => {
                            shared
                                .stopped
                                .store(true, std::sync::atomic::Ordering::SeqCst);
                            shared.applied_cv.notify_all();
                            return;
                        }
                    };
                    // The AB layer delivers whole batches at once; drain
                    // everything that is already ready so the batch applies
                    // under a single state-lock acquisition instead of one
                    // lock round-trip per command.
                    let mut ready: Vec<_> = fifo.push(delivery);
                    while let Ok(Some(d)) = node.atomic_try_recv() {
                        ready.extend(fifo.push(d));
                    }
                    if ready.is_empty() {
                        continue;
                    }
                    {
                        let mut state = shared.state.lock();
                        for d in &ready {
                            let mut frame = d.payload.as_ref();
                            let tag = frame.first().copied().unwrap_or(0);
                            frame = frame.get(1..).unwrap_or(&[]);
                            if tag == TAG_USER {
                                apply(&mut state, d.id.sender, frame);
                            }
                        }
                    }
                    // Both user commands and markers count as applied.
                    // Hold the applied lock across the notify so a waiter
                    // can never check-then-sleep between our insert and the
                    // wakeup, and notify per drained batch — sync-submit
                    // latency must come from the protocol, not from a poll
                    // interval.
                    node.metrics().rsm_applied_total.add(ready.len() as u64);
                    let mut applied = shared.applied.lock();
                    for d in &ready {
                        if d.id.sender == me {
                            applied.insert(d.id.rbid);
                        }
                    }
                    node.metrics().rsm_applied_watermark.set(applied.watermark);
                    shared.applied_cv.notify_all();
                }
            })
        };
        Replica {
            node,
            shared,
            applier: Some(applier),
        }
    }

    /// This replica's process id.
    pub fn id(&self) -> ProcessId {
        self.node.id()
    }

    /// The underlying node (metrics, link state, debug introspection).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Submits a command without waiting for it to apply.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down.
    pub fn submit(&self, command: Bytes) -> Result<MsgId, NodeError> {
        self.node.atomic_broadcast(frame(TAG_USER, &command))
    }

    /// Submits a command and blocks until this replica has applied it
    /// (every correct replica applies it at the same history position).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down.
    pub fn submit_sync(&self, command: Bytes) -> Result<MsgId, NodeError> {
        let id = self.submit(command)?;
        self.wait_applied(id.rbid)?;
        Ok(id)
    }

    /// A linearization barrier: returns once everything ordered before
    /// the barrier has been applied locally.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down.
    pub fn barrier(&self) -> Result<(), NodeError> {
        let id = self.node.atomic_broadcast(frame(TAG_MARKER, &[]))?;
        self.wait_applied(id.rbid)
    }

    /// Reads the current state under the replica lock.
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.shared.state.lock())
    }

    /// Underlying atomic broadcast introspection (monitoring/debugging).
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down.
    pub fn ab_debug(&self) -> Result<Option<(crate::ab::AbStats, u32, usize)>, NodeError> {
        self.node.ab_debug()
    }

    /// Shuts the underlying node down.
    pub fn shutdown(&self) {
        self.node.shutdown();
        self.shared.applied_cv.notify_all();
    }

    fn wait_applied(&self, rbid: u64) -> Result<(), NodeError> {
        let mut applied = self.shared.applied.lock();
        while !applied.contains(rbid) {
            // Bail out once the applier has exited (node shut down): no
            // further deliveries will ever be applied, so the command can
            // never be observed as applied — that is a failure, not a
            // silent success. Never touch the node's delivery queue from
            // here — that would steal deliveries from the applier thread.
            if self
                .shared
                .stopped
                .load(std::sync::atomic::Ordering::SeqCst)
            {
                return Err(NodeError::Disconnected);
            }
            // The applier notifies on every apply; the timeout only
            // covers shutdown racing the stopped-flag store.
            self.shared
                .applied_cv
                .wait_for(&mut applied, std::time::Duration::from_millis(100));
        }
        Ok(())
    }
}

impl<S: Send + 'static> Drop for Replica<S> {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.applier.take() {
            let _ = h.join();
        }
    }
}

fn frame(tag: u8, body: &[u8]) -> Bytes {
    let mut b = BytesMut::with_capacity(1 + body.len());
    b.put_u8(tag);
    b.put_slice(body);
    b.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SessionConfig;

    fn counters(n: usize) -> Vec<Replica<i64>> {
        let nodes = Node::cluster(SessionConfig::new(n).unwrap()).unwrap();
        nodes
            .into_iter()
            .map(|node| {
                Replica::new(node, 0i64, |state, _sender, cmd| match cmd {
                    b"incr" => *state += 1,
                    b"decr" => *state -= 1,
                    _ => {}
                })
            })
            .collect()
    }

    #[test]
    fn replicas_converge() {
        let replicas: Vec<_> = counters(4).into_iter().map(std::sync::Arc::new).collect();
        let handles: Vec<_> = replicas
            .iter()
            .map(|r| {
                let r = std::sync::Arc::clone(r);
                std::thread::spawn(move || {
                    for _ in 0..3 {
                        r.submit(Bytes::from_static(b"incr")).unwrap();
                    }
                    if r.id() == 0 {
                        r.submit(Bytes::from_static(b"decr")).unwrap();
                    }
                    // Sync on our last command, then a barrier.
                    r.submit_sync(Bytes::from_static(b"incr")).unwrap();
                    r.barrier().unwrap();
                })
            })
            .collect();
        // Every submitter must finish before any replica shuts down:
        // liveness only tolerates f crashes, so a replica that stops as
        // soon as *it* sees the final value can strand a straggler whose
        // last batch has not been ordered yet.
        for h in handles {
            h.join().unwrap();
        }
        // All barriers passed, so every command is ordered somewhere;
        // with the whole group alive each replica must apply the full
        // prefix. 4 replicas × 4 incr − 1 decr = 15.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        for r in &replicas {
            loop {
                let v = r.read(|s| *s);
                if v == 15 {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "replica {} stuck at {v}, want 15",
                    r.id()
                );
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        for r in &replicas {
            r.shutdown();
        }
    }

    #[test]
    fn submit_sync_observes_own_command() {
        let replicas: Vec<_> = counters(4).into_iter().map(std::sync::Arc::new).collect();
        let handles: Vec<_> = replicas
            .iter()
            .map(|r| {
                let r = std::sync::Arc::clone(r);
                std::thread::spawn(move || {
                    r.submit_sync(Bytes::from_static(b"incr")).unwrap();
                    r.read(|s| *s)
                })
            })
            .collect();
        // Join before any shutdown — see replicas_converge.
        let values: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for v in values {
            // At least our own increment must be visible.
            assert!(v >= 1);
        }
        for r in &replicas {
            r.shutdown();
        }
    }

    #[test]
    fn submit_sync_surfaces_shutdown_instead_of_silent_success() {
        use crate::node::{Node, NodeError};
        let mut nodes = Node::cluster(SessionConfig::new(4).unwrap()).unwrap();
        // Keep only replica 0 alive: with 3 of 4 processes gone, atomic
        // broadcast can never gather a quorum, so the command never
        // applies and the waiter blocks until shutdown.
        let node0 = nodes.remove(0);
        drop(nodes);
        let r = std::sync::Arc::new(Replica::new(node0, 0i64, |s: &mut i64, _, _| *s += 1));
        let waiter = {
            let r = std::sync::Arc::clone(&r);
            std::thread::spawn(move || r.submit_sync(Bytes::from_static(b"incr")))
        };
        std::thread::sleep(std::time::Duration::from_millis(100));
        r.shutdown();
        let got = waiter.join().unwrap();
        assert_eq!(
            got.unwrap_err(),
            NodeError::Disconnected,
            "an unapplied command must fail, not silently succeed"
        );
    }

    #[test]
    fn own_applied_compaction() {
        let mut a = OwnApplied::default();
        for rbid in [1u64, 0, 3, 2] {
            a.insert(rbid);
        }
        assert!(a.contains(3));
        assert!(!a.contains(4));
        assert_eq!(a.watermark, 4);
        assert!(a.sparse.is_empty());
    }
}
