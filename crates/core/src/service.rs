//! The **service wiring layer**: everything needed to expose a
//! [`Replica`](crate::rsm::Replica) as an intrusion-tolerant *service*
//! that external clients can call — the paper's title promise ("…
//! Asynchronous **Services**") beyond the in-process protocol stack.
//!
//! The pieces, bottom-up:
//!
//! * [`ServiceCommand`] — the replicated command envelope `(client, seq,
//!   kind, payload)` that travels through atomic broadcast. Carrying the
//!   client identity and sequence number *inside* the ordered command is
//!   what makes retry deduplication deterministic: every correct replica
//!   sees the same duplicates at the same positions and skips them
//!   identically. The AB layer batches commands for throughput, but the
//!   total order it delivers is still *per command*, so this property is
//!   unchanged — including when the two copies of a retried command land
//!   in different batches.
//! * [`SessionTable`] — a bounded per-client table `(client, seq) →
//!   cached reply` with LRU eviction that never evicts a session holding
//!   a live in-flight request. One *replicated* instance (inside the
//!   state machine) discharges exactly-once applies; one *serving*
//!   instance per front-end answers retries from cache without
//!   re-ordering.
//! * [`ServiceReplica`] — wraps a [`Node`] into a replica whose apply
//!   function returns a **reply** per command, maintains both tables,
//!   wakes request waiters after local apply, and offers the optimistic
//!   local read the client library's `f+1`-vote read path consumes.
//!
//! The network face of this module (framed, HMAC-authenticated client
//! connections, reply voting, retries) lives in the `ritas-service`
//! crate; this module is transport-free so the same wiring also serves
//! in-process tests and the simulator.

use crate::codec::{Reader, WireError, WireMessage, Writer};
use crate::node::{Node, NodeError};
use crate::recovery::scheduler::{RotationConfig, RotationState};
use crate::recovery::{Hash, RecoveryConfig, RecoveryConfigError, SnapshotState};
use crate::rsm::Replica;
use bytes::Bytes;
use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use ritas_metrics::{Layer, Metrics};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of an external service client (disjoint from replica
/// [`ProcessId`](crate::ProcessId)s — clients are *not* group members).
pub type ClientId = u64;

/// Default bound on tracked client sessions per table.
pub const SESSION_TABLE_CAPACITY: usize = 4096;

/// What a client asks the service to do with a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// Apply the payload to the replicated state (the write path).
    Apply,
    /// Evaluate the read-only query at the command's position in the
    /// total order (the linearizable read fallback).
    OrderedRead,
}

/// The envelope ordered through atomic broadcast for every client
/// request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceCommand {
    /// The requesting client.
    pub client: ClientId,
    /// The client's session sequence number (starts at 1, gap-free).
    pub seq: u64,
    /// Write or ordered read.
    pub kind: CommandKind,
    /// Opaque application payload.
    pub payload: Bytes,
}

impl WireMessage for ServiceCommand {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self.kind {
            CommandKind::Apply => 1,
            CommandKind::OrderedRead => 2,
        })
        .u64(self.client)
        .u64(self.seq)
        .bytes(&self.payload);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let kind = match r.u8("svc.kind")? {
            1 => CommandKind::Apply,
            2 => CommandKind::OrderedRead,
            tag => {
                return Err(WireError::InvalidTag {
                    what: "svc.kind",
                    tag,
                })
            }
        };
        Ok(ServiceCommand {
            kind,
            client: r.u64("svc.client")?,
            seq: r.u64("svc.seq")?,
            payload: r.bytes("svc.payload")?,
        })
    }
}

/// Outcome of a [`SessionTable`] lookup for an incoming request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionCheck {
    /// Never seen: submit it.
    New,
    /// The same request is already submitted and awaiting apply: wait,
    /// do not submit again.
    InFlight,
    /// Already applied; here is the cached reply.
    Cached(Bytes),
    /// `seq` is older than the session's last applied request and its
    /// reply is gone — the client has already moved past it.
    Stale,
}

#[derive(Debug)]
struct Session {
    /// Highest applied sequence number (0 = none yet).
    last_seq: u64,
    /// Reply of the last applied request.
    last_reply: Option<Bytes>,
    /// Sequence numbers submitted but not yet applied.
    in_flight: BTreeSet<u64>,
    /// LRU stamp (monotone per table).
    stamp: u64,
}

/// A bounded table of client sessions: per client, the last applied
/// `(seq, reply)` pair plus the set of in-flight sequence numbers.
///
/// Eviction policy: when inserting a *new* client past the capacity, the
/// least-recently-used session **with no in-flight request** is evicted.
/// A live in-flight request pins its session — evicting it would either
/// lose the reply a waiting connection needs or, in the replicated
/// instance, forget dedup state while the command is still in the
/// ordering pipeline. If every session is pinned, the insert is refused
/// ([`SessionTable::begin`] returns `false`): admission control instead
/// of silent unboundedness.
#[derive(Debug)]
pub struct SessionTable {
    cap: usize,
    clients: HashMap<ClientId, Session>,
    clock: u64,
}

impl SessionTable {
    /// Creates a table bounded to `cap` client sessions (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        SessionTable {
            cap: cap.max(1),
            clients: HashMap::new(),
            clock: 0,
        }
    }

    /// Number of tracked client sessions.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether no session is tracked.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Total in-flight requests across all sessions.
    pub fn in_flight(&self) -> usize {
        self.clients.values().map(|s| s.in_flight.len()).sum()
    }

    fn touch(&mut self, client: ClientId) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(s) = self.clients.get_mut(&client) {
            s.stamp = clock;
        }
    }

    /// Classifies request `(client, seq)` against the table.
    pub fn check(&self, client: ClientId, seq: u64) -> SessionCheck {
        match self.clients.get(&client) {
            None => SessionCheck::New,
            Some(s) if s.in_flight.contains(&seq) => SessionCheck::InFlight,
            Some(s) if seq == s.last_seq => match &s.last_reply {
                Some(r) => SessionCheck::Cached(r.clone()),
                None => SessionCheck::Stale,
            },
            Some(s) if seq < s.last_seq => SessionCheck::Stale,
            Some(_) => SessionCheck::New,
        }
    }

    /// Whether `(client, seq)` has already been applied (the replicated
    /// dedup predicate: every correct replica answers identically).
    pub fn is_applied(&self, client: ClientId, seq: u64) -> bool {
        self.clients.get(&client).is_some_and(|s| seq <= s.last_seq)
    }

    /// Cached reply for `(client, seq)`, when the table still holds it.
    pub fn cached(&self, client: ClientId, seq: u64) -> Option<Bytes> {
        self.clients
            .get(&client)
            .filter(|s| s.last_seq == seq)
            .and_then(|s| s.last_reply.clone())
    }

    /// Marks `(client, seq)` in flight, creating (and if necessary
    /// evicting for) the session. Returns `false` when the table is at
    /// capacity and every session is pinned by a live in-flight request —
    /// the caller should refuse the request (busy) rather than grow.
    pub fn begin(&mut self, client: ClientId, seq: u64) -> bool {
        if !self.clients.contains_key(&client) && !self.make_room() {
            return false;
        }
        self.clients
            .entry(client)
            .or_insert_with(|| Session {
                last_seq: 0,
                last_reply: None,
                in_flight: BTreeSet::new(),
                stamp: 0,
            })
            .in_flight
            .insert(seq);
        self.touch(client);
        true
    }

    /// Records the applied reply for `(client, seq)`, clearing its
    /// in-flight mark. Creates the session if needed (apply-driven
    /// instances never call [`SessionTable::begin`]); returns `false`
    /// when the table refused the insert (full of pinned sessions).
    pub fn complete(&mut self, client: ClientId, seq: u64, reply: Bytes) -> bool {
        if !self.clients.contains_key(&client) && !self.make_room() {
            return false;
        }
        let s = self.clients.entry(client).or_insert_with(|| Session {
            last_seq: 0,
            last_reply: None,
            in_flight: BTreeSet::new(),
            stamp: 0,
        });
        s.in_flight.remove(&seq);
        if seq >= s.last_seq {
            s.last_seq = seq;
            s.last_reply = Some(reply);
        }
        self.touch(client);
        true
    }

    /// Clears the in-flight mark of `(client, seq)` without recording a
    /// reply — the submit path failed before the command entered the
    /// ordered stream. The session becomes eviction-eligible again and
    /// `seq` reverts to [`SessionCheck::New`], so a later retry
    /// resubmits instead of waiting forever on an apply that will never
    /// come.
    pub fn abort(&mut self, client: ClientId, seq: u64) {
        if let Some(s) = self.clients.get_mut(&client) {
            s.in_flight.remove(&seq);
        }
    }

    /// Deterministic decode bound: a snapshot's session count can never
    /// exceed the table capacity it encodes.
    fn decode_bounded(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let cap = r.u64("sess.cap")? as usize;
        let clock = r.u64("sess.clock")?;
        let count = r.u32("sess.count")? as usize;
        if count > cap.max(1) {
            return Err(WireError::FieldTooLong {
                what: "sess.count",
                len: count,
            });
        }
        let mut clients = HashMap::new();
        for _ in 0..count {
            let id = r.u64("sess.client")?;
            let last_seq = r.u64("sess.last_seq")?;
            let stamp = r.u64("sess.stamp")?;
            let last_reply = match r.u8("sess.has_reply")? {
                0 => None,
                _ => Some(r.bytes("sess.reply")?),
            };
            let pins = r.u32("sess.pins")? as usize;
            if pins > cap.max(1) * 64 {
                return Err(WireError::FieldTooLong {
                    what: "sess.pins",
                    len: pins,
                });
            }
            let mut in_flight = BTreeSet::new();
            for _ in 0..pins {
                in_flight.insert(r.u64("sess.pin")?);
            }
            clients.insert(
                id,
                Session {
                    last_seq,
                    last_reply,
                    in_flight,
                    stamp,
                },
            );
        }
        Ok(SessionTable {
            cap: cap.max(1),
            clients,
            clock,
        })
    }

    /// Ensures room for one more session. Never evicts a session with a
    /// live in-flight request.
    fn make_room(&mut self) -> bool {
        if self.clients.len() < self.cap {
            return true;
        }
        let victim = self
            .clients
            .iter()
            .filter(|(_, s)| s.in_flight.is_empty())
            .min_by_key(|(_, s)| s.stamp)
            .map(|(c, _)| *c);
        match victim {
            Some(c) => {
                self.clients.remove(&c);
                true
            }
            None => false,
        }
    }
}

/// Canonical encoding of the *replicated* session table for snapshots.
///
/// Everything that influences replicated behavior is included: the LRU
/// clock and per-session stamps drive eviction decisions, which are part
/// of the deterministic apply path, so a restored replica must make the
/// same evictions as its peers. Clients encode sorted by id (the map is
/// unordered in memory) and in-flight sets iterate sorted, so equal
/// tables always produce equal bytes — snapshot digests are
/// vote-compared across replicas.
impl SnapshotState for SessionTable {
    fn encode_snapshot(&self, w: &mut Writer) {
        w.u64(self.cap as u64)
            .u64(self.clock)
            .u32(self.clients.len() as u32);
        let mut ids: Vec<ClientId> = self.clients.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let s = &self.clients[&id];
            w.u64(id).u64(s.last_seq).u64(s.stamp);
            match &s.last_reply {
                Some(reply) => {
                    w.u8(1).bytes(reply);
                }
                None => {
                    w.u8(0);
                }
            }
            w.u32(s.in_flight.len() as u32);
            for &seq in &s.in_flight {
                w.u64(seq);
            }
        }
    }

    fn decode_snapshot(r: &mut Reader<'_>) -> Result<Self, WireError> {
        SessionTable::decode_bounded(r)
    }
}

/// Errors surfaced by the service wiring layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The underlying node failed (shut down, protocol error).
    Node(NodeError),
    /// The request did not apply within the deadline (it may still apply
    /// later — retry against this or another replica; dedup makes the
    /// retry safe).
    Timeout,
    /// The session table is full of live in-flight sessions (admission
    /// control) — back off and retry.
    Busy,
    /// `seq` is older than the client's last applied request and its
    /// cached reply is gone.
    Stale,
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::Node(e) => write!(f, "node error: {e}"),
            ServiceError::Timeout => write!(f, "request did not apply in time"),
            ServiceError::Busy => write!(f, "session table full (busy)"),
            ServiceError::Stale => write!(f, "stale sequence number"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<NodeError> for ServiceError {
    fn from(e: NodeError) -> Self {
        ServiceError::Node(e)
    }
}

/// The replicated state wrapper: the application state plus the
/// *replicated* session table (dedup state is part of the state machine,
/// so every correct replica skips the same duplicates).
struct ServiceState<S> {
    app: S,
    sessions: SessionTable,
}

/// Snapshots capture the app state *and* the replicated session table:
/// restoring one without the other would either lose application data or
/// forget which `(client, seq)` pairs already applied — exactly the
/// state that keeps a retry across the snapshot boundary exactly-once.
impl<S: SnapshotState> SnapshotState for ServiceState<S> {
    fn encode_snapshot(&self, w: &mut Writer) {
        self.app.encode_snapshot(w);
        self.sessions.encode_snapshot(w);
    }

    fn decode_snapshot(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(ServiceState {
            app: S::decode_snapshot(r)?,
            sessions: SessionTable::decode_snapshot(r)?,
        })
    }
}

type Waiters = Mutex<HashMap<(ClientId, u64), Vec<Sender<Bytes>>>>;

/// A replica of a deterministic request/reply service.
///
/// `apply` runs once per ordered client command at every replica and
/// returns the reply; `query` evaluates read-only requests (locally for
/// the optimistic path, at the ordered position for the fallback). Both
/// must be **deterministic** — replies are vote-compared byte-for-byte
/// across replicas by the client library, so any divergence (clocks,
/// randomness, map iteration order) reads as a Byzantine replica.
///
/// # Example
///
/// ```
/// use ritas::node::{Node, SessionConfig};
/// use ritas::service::{CommandKind, ServiceConfig, ServiceReplica};
/// use bytes::Bytes;
/// use std::time::Duration;
///
/// let nodes = Node::cluster(SessionConfig::new(4)?)?;
/// let replicas: Vec<_> = nodes
///     .into_iter()
///     .map(|n| ServiceReplica::new(
///         n,
///         0u64,
///         ServiceConfig::default(),
///         |count, _client, cmd| {
///             if cmd == b"incr" { *count += 1; }
///             Bytes::from(count.to_be_bytes().to_vec())
///         },
///         |count, _q| Bytes::from(count.to_be_bytes().to_vec()),
///     ))
///     .collect();
/// // A client request (client 9, seq 1) submitted at replica 2 applies
/// // everywhere; the reply is the post-apply counter value.
/// let reply = replicas[2]
///     .submit(9, 1, CommandKind::Apply, Bytes::from_static(b"incr"), Duration::from_secs(10))?;
/// assert_eq!(reply.as_ref(), 1u64.to_be_bytes());
/// // A retry of the same (client, seq) is served from the session
/// // table without a second apply.
/// let again = replicas[2]
///     .submit(9, 1, CommandKind::Apply, Bytes::from_static(b"incr"), Duration::from_secs(10))?;
/// assert_eq!(again, reply);
/// # for r in &replicas { r.shutdown(); }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ServiceReplica<S: Send + 'static> {
    replica: Replica<ServiceState<S>>,
    /// Serving-side session table (cache + in-flight pinning). Distinct
    /// from the replicated instance inside the state: this one may be
    /// consulted and updated without holding the state lock, and its
    /// in-flight pins are local knowledge that must never influence the
    /// replicated dedup decision.
    table: Arc<Mutex<SessionTable>>,
    waiters: Arc<Waiters>,
    query: Arc<QueryFn<S>>,
    metrics: Metrics,
}

/// Shared read-only query closure of a [`ServiceReplica`].
type QueryFn<S> = dyn Fn(&S, &[u8]) -> Bytes + Send + Sync;

/// Tuning for a [`ServiceReplica`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound on client sessions tracked by each table.
    pub session_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            session_capacity: SESSION_TABLE_CAPACITY,
        }
    }
}

impl<S: Send + 'static> ServiceReplica<S> {
    /// Wraps `node` into a service replica over `initial` state.
    pub fn new(
        node: Node,
        initial: S,
        config: ServiceConfig,
        apply: impl FnMut(&mut S, ClientId, &[u8]) -> Bytes + Send + 'static,
        query: impl Fn(&S, &[u8]) -> Bytes + Send + Sync + 'static,
    ) -> Self {
        let metrics = node.metrics().clone();
        let table = Arc::new(Mutex::new(SessionTable::new(config.session_capacity)));
        let waiters: Arc<Waiters> = Arc::new(Mutex::new(HashMap::new()));
        let query: Arc<QueryFn<S>> = Arc::new(query);

        let state = ServiceState {
            app: initial,
            sessions: SessionTable::new(config.session_capacity),
        };
        let applier = Self::make_apply(
            metrics.clone(),
            Arc::clone(&table),
            Arc::clone(&waiters),
            Arc::clone(&query),
            apply,
        );
        let replica = Replica::new(node, state, applier);
        ServiceReplica {
            replica,
            table,
            waiters,
            query,
            metrics,
        }
    }

    /// The shared per-delivery apply closure: decode, replicated dedup,
    /// apply/query, mirror into the serving table, wake local waiters.
    fn make_apply(
        m: Metrics,
        t: Arc<Mutex<SessionTable>>,
        w: Arc<Waiters>,
        q: Arc<QueryFn<S>>,
        mut apply: impl FnMut(&mut S, ClientId, &[u8]) -> Bytes + Send + 'static,
    ) -> impl FnMut(&mut ServiceState<S>, crate::ProcessId, &[u8]) + Send + 'static {
        move |state, _submitter, cmd| {
            let Ok(c) = ServiceCommand::from_bytes(cmd) else {
                // A correct front-end only ever submits well-formed
                // commands; garbage here means a Byzantine replica
                // injected into the ordered stream. Skipping it uniformly
                // keeps all correct replicas in the same state.
                return;
            };
            let reply = if state.sessions.is_applied(c.client, c.seq) {
                // Ordered duplicate: a retry submitted at another replica
                // was ordered after the original. Apply exactly once.
                m.service_dup_apply_skipped.inc();
                state.sessions.cached(c.client, c.seq)
            } else {
                let span = format!("svc:{}:{}/apply", c.client, c.seq);
                m.span_open(span.clone(), Layer::Service);
                let reply = match c.kind {
                    CommandKind::Apply => (apply)(&mut state.app, c.client, &c.payload),
                    CommandKind::OrderedRead => {
                        m.service_reads_ordered.inc();
                        (q)(&state.app, &c.payload)
                    }
                };
                m.span_close(&span);
                m.service_commands_applied.inc();
                state.sessions.complete(c.client, c.seq, reply.clone());
                Some(reply)
            };
            // Mirror into the serving table and wake local waiters.
            if let Some(reply) = reply {
                {
                    let mut t = t.lock();
                    t.complete(c.client, c.seq, reply.clone());
                    m.service_sessions_live.set(t.len() as u64);
                    m.service_inflight.set(t.in_flight() as u64);
                }
                if let Some(txs) = w.lock().remove(&(c.client, c.seq)) {
                    for tx in txs {
                        let _ = tx.send(reply.clone());
                    }
                }
            }
        }
    }

    /// This replica's process id.
    pub fn id(&self) -> crate::ProcessId {
        self.replica.id()
    }

    /// Group size of the underlying session.
    pub fn group_size(&self) -> usize {
        self.replica.node().group_size()
    }

    /// The metrics registry shared with the underlying node.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Handles one client request end-to-end: dedup against the session
    /// table, submit through atomic broadcast when new, block until the
    /// command applies locally, return the reply.
    ///
    /// Safe to call concurrently from many connection threads; retries of
    /// an in-flight `(client, seq)` merge onto the same waiter set
    /// instead of re-submitting.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Timeout`] when the command did not apply within
    /// `timeout` (it may still apply later — retrying is safe),
    /// [`ServiceError::Busy`] under session-table admission control,
    /// [`ServiceError::Stale`] for sequence numbers older than the
    /// session's last reply, [`ServiceError::Node`] when the node is
    /// gone.
    pub fn submit(
        &self,
        client: ClientId,
        seq: u64,
        kind: CommandKind,
        payload: Bytes,
        timeout: Duration,
    ) -> Result<Bytes, ServiceError> {
        self.metrics.service_requests_total.inc();
        let span = format!("svc:{client}:{seq}");
        let (needs_submit, rx) = {
            let mut table = self.table.lock();
            match table.check(client, seq) {
                SessionCheck::Cached(reply) => {
                    self.metrics.service_dedup_hits.inc();
                    return Ok(reply);
                }
                SessionCheck::Stale => return Err(ServiceError::Stale),
                SessionCheck::InFlight => {
                    self.metrics.service_dedup_hits.inc();
                    (false, self.register_waiter(client, seq))
                }
                SessionCheck::New => {
                    if !table.begin(client, seq) {
                        self.metrics.service_busy_rejected.inc();
                        return Err(ServiceError::Busy);
                    }
                    self.metrics.service_sessions_live.set(table.len() as u64);
                    self.metrics.service_inflight.set(table.in_flight() as u64);
                    (true, self.register_waiter(client, seq))
                }
            }
        };
        if needs_submit {
            self.metrics.span_open(span.clone(), Layer::Service);
            self.metrics.span_open(format!("{span}/ab"), Layer::Service);
            let cmd = ServiceCommand {
                client,
                seq,
                kind,
                payload,
            };
            if let Err(e) = self.replica.submit(cmd.to_bytes()) {
                self.waiters.lock().remove(&(client, seq));
                // Unwind the in-flight pin set by `begin` above: the
                // command never entered the ordered stream, so nothing
                // will ever complete it. Leaving it would make the
                // session permanently unevictable and every retry of
                // this (client, seq) hang on a waiter that never fires.
                {
                    let mut table = self.table.lock();
                    table.abort(client, seq);
                    self.metrics.service_inflight.set(table.in_flight() as u64);
                }
                self.metrics.span_close(&format!("{span}/ab"));
                self.metrics.span_close(&span);
                return Err(ServiceError::Node(e));
            }
        }
        match rx.recv_timeout(timeout) {
            Ok(reply) => {
                self.metrics.span_close(&format!("{span}/ab"));
                self.metrics.span_close(&span);
                self.metrics.service_replies_total.inc();
                Ok(reply)
            }
            Err(_) => Err(ServiceError::Timeout),
        }
    }

    /// Waits for `(client, seq)` to apply locally **without submitting
    /// it** — the *observer* leg of the client's fan-out: the client
    /// submits at `f+1` replicas (at least one correct, so ordering is
    /// guaranteed) and merely observes at the rest, which answer from
    /// their own apply of the same ordered command without injecting
    /// duplicates into the ordered stream.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Timeout`] when nothing applied in time (the
    /// command may not have been submitted anywhere yet),
    /// [`ServiceError::Stale`] for a sequence number already surpassed.
    pub fn await_reply(
        &self,
        client: ClientId,
        seq: u64,
        timeout: Duration,
    ) -> Result<Bytes, ServiceError> {
        self.metrics.service_requests_total.inc();
        let rx = {
            let table = self.table.lock();
            match table.check(client, seq) {
                SessionCheck::Cached(reply) => {
                    self.metrics.service_dedup_hits.inc();
                    return Ok(reply);
                }
                SessionCheck::Stale => return Err(ServiceError::Stale),
                SessionCheck::InFlight | SessionCheck::New => self.register_waiter(client, seq),
            }
        };
        match rx.recv_timeout(timeout) {
            Ok(reply) => {
                self.metrics.service_replies_total.inc();
                Ok(reply)
            }
            Err(_) => Err(ServiceError::Timeout),
        }
    }

    fn register_waiter(&self, client: ClientId, seq: u64) -> Receiver<Bytes> {
        let (tx, rx) = bounded(1);
        self.waiters
            .lock()
            .entry((client, seq))
            .or_default()
            .push(tx);
        rx
    }

    /// Evaluates `query` against the current local state **without
    /// ordering** — the optimistic read the client library accepts once
    /// `f+1` replicas answer byte-identically. Sequentially consistent
    /// (a prefix of the agreed history), not linearizable on its own.
    pub fn optimistic_read(&self, q: &[u8]) -> Bytes {
        self.metrics.service_reads_optimistic.inc();
        self.replica.read(|s| (self.query)(&s.app, q))
    }

    /// Reads the application state under the replica lock (local tests
    /// and loadgen verification).
    pub fn read_state<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        self.replica.read(|s| f(&s.app))
    }

    /// A linearization barrier on the underlying replica.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down.
    pub fn barrier(&self) -> Result<(), NodeError> {
        self.replica.barrier()
    }

    /// Atomic-broadcast introspection of the underlying node: protocol
    /// stats (delivered commands, flushed batches), agreement round, and
    /// pending count. Lets service-level tests and the loadgen audit the
    /// batched ordering path without reaching around the service layer.
    ///
    /// # Errors
    ///
    /// [`NodeError::Disconnected`] if the node has shut down.
    pub fn ab_debug(&self) -> Result<Option<(crate::ab::AbStats, u32, usize)>, NodeError> {
        self.replica.ab_debug()
    }

    /// Shuts the underlying node down.
    pub fn shutdown(&self) {
        self.replica.shutdown();
    }
}

impl<S: SnapshotState + Send + 'static> ServiceReplica<S> {
    /// Like [`ServiceReplica::new`] with the recovery pipeline active:
    /// the replica snapshots the app state *and* the replicated session
    /// table at every `recovery.snapshot_every` stream boundary and
    /// serves state transfer to rejoining peers (see
    /// [`Replica::with_recovery`]).
    ///
    /// # Errors
    ///
    /// Returns a [`RecoveryConfigError`] when `recovery` contains a
    /// zero field — rejected before any thread spawns.
    pub fn with_recovery(
        node: Node,
        initial: S,
        config: ServiceConfig,
        recovery: RecoveryConfig,
        apply: impl FnMut(&mut S, ClientId, &[u8]) -> Bytes + Send + 'static,
        query: impl Fn(&S, &[u8]) -> Bytes + Send + Sync + 'static,
    ) -> Result<Self, RecoveryConfigError> {
        let metrics = node.metrics().clone();
        let table = Arc::new(Mutex::new(SessionTable::new(config.session_capacity)));
        let waiters: Arc<Waiters> = Arc::new(Mutex::new(HashMap::new()));
        let query: Arc<QueryFn<S>> = Arc::new(query);
        let state = ServiceState {
            app: initial,
            sessions: SessionTable::new(config.session_capacity),
        };
        let applier = Self::make_apply(
            metrics.clone(),
            Arc::clone(&table),
            Arc::clone(&waiters),
            Arc::clone(&query),
            apply,
        );
        let replica = Replica::with_recovery(node, state, recovery, applier)?;
        Ok(ServiceReplica {
            replica,
            table,
            waiters,
            query,
            metrics,
        })
    }

    /// Rebuilds a wiped service replica from its peers via snapshot
    /// transfer and Merkle anti-entropy (see [`Replica::rejoin`]). The
    /// restored replicated session table keeps retried `(client, seq)`
    /// pairs exactly-once across the snapshot boundary: an ordered
    /// duplicate of a pre-snapshot command is skipped by the restored
    /// dedup state, not re-applied.
    ///
    /// # Errors
    ///
    /// As [`ServiceReplica::with_recovery`].
    pub fn rejoin(
        node: Node,
        initial: S,
        config: ServiceConfig,
        recovery: RecoveryConfig,
        stale: Option<Bytes>,
        apply: impl FnMut(&mut S, ClientId, &[u8]) -> Bytes + Send + 'static,
        query: impl Fn(&S, &[u8]) -> Bytes + Send + Sync + 'static,
    ) -> Result<Self, RecoveryConfigError> {
        let metrics = node.metrics().clone();
        let table = Arc::new(Mutex::new(SessionTable::new(config.session_capacity)));
        let waiters: Arc<Waiters> = Arc::new(Mutex::new(HashMap::new()));
        let query: Arc<QueryFn<S>> = Arc::new(query);
        let state = ServiceState {
            app: initial,
            sessions: SessionTable::new(config.session_capacity),
        };
        let applier = Self::make_apply(
            metrics.clone(),
            Arc::clone(&table),
            Arc::clone(&waiters),
            Arc::clone(&query),
            apply,
        );
        let replica = Replica::rejoin(node, state, recovery, stale, applier)?;
        Ok(ServiceReplica {
            replica,
            table,
            waiters,
            query,
            metrics,
        })
    }

    /// The latest local snapshot digest as `(seq, merkle_root)` — equal
    /// across correct replicas at equal `seq`. `None` for replicas built
    /// without recovery or before the first snapshot boundary.
    pub fn snapshot_digest(&self) -> Option<(u64, Hash)> {
        self.replica.snapshot_digest()
    }

    /// The encoded bytes of the latest local snapshot (see
    /// [`Replica::latest_snapshot_bytes`]) — the `stale` image for a
    /// later [`ServiceReplica::rejoin`].
    pub fn latest_snapshot_bytes(&self) -> Option<Bytes> {
        self.replica.latest_snapshot_bytes()
    }

    /// Fault-injection hook: serve corrupted snapshot chunks (see
    /// [`Replica::set_chunk_tamper`]).
    pub fn set_chunk_tamper(&self, on: bool) {
        self.replica.set_chunk_tamper(on);
    }

    /// Arms the proactive-recovery rotation driver on the underlying
    /// replica (see [`Replica::start_rotation`]): `on_wipe(epoch)` fires
    /// when this replica's ordered wipe slot opens and it is healthy
    /// enough to take it.
    pub fn start_rotation(&self, cfg: RotationConfig, on_wipe: impl Fn(u64) + Send + 'static) {
        self.replica.start_rotation(cfg, on_wipe);
    }

    /// The replicated rotation-coordinator state (see
    /// [`Replica::rotation_state`]).
    pub fn rotation_state(&self) -> Option<RotationState> {
        self.replica.rotation_state()
    }

    /// The underlying node's current transport key epoch — the epoch its
    /// outbound frames are sealed under after rotation rekeys.
    pub fn key_epoch(&self) -> u64 {
        self.replica.node().key_epoch()
    }
}

impl<S: Send + 'static> core::fmt::Debug for ServiceReplica<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServiceReplica")
            .field("id", &self.replica.id())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SessionConfig;

    fn counters(n: usize) -> Vec<Arc<ServiceReplica<u64>>> {
        let nodes = Node::cluster(SessionConfig::new(n).unwrap()).unwrap();
        nodes
            .into_iter()
            .map(|node| {
                Arc::new(ServiceReplica::new(
                    node,
                    0u64,
                    ServiceConfig::default(),
                    |count, _client, cmd| {
                        if cmd == b"incr" {
                            *count += 1;
                        }
                        Bytes::from(count.to_be_bytes().to_vec())
                    },
                    |count, _q| Bytes::from(count.to_be_bytes().to_vec()),
                ))
            })
            .collect()
    }

    const T: Duration = Duration::from_secs(20);

    #[test]
    fn command_codec_roundtrip() {
        for kind in [CommandKind::Apply, CommandKind::OrderedRead] {
            let c = ServiceCommand {
                client: 77,
                seq: 3,
                kind,
                payload: Bytes::from_static(b"body"),
            };
            assert_eq!(ServiceCommand::from_bytes(&c.to_bytes()).unwrap(), c);
        }
        assert!(ServiceCommand::from_bytes(&[9, 0, 0]).is_err());
    }

    #[test]
    fn submit_applies_and_retry_hits_cache() {
        let replicas = counters(4);
        let r0 = Arc::clone(&replicas[0]);
        let reply = r0
            .submit(5, 1, CommandKind::Apply, Bytes::from_static(b"incr"), T)
            .unwrap();
        assert_eq!(reply.as_ref(), 1u64.to_be_bytes());
        // Retry of the same (client, seq): served from the session table,
        // no second apply.
        let again = r0
            .submit(5, 1, CommandKind::Apply, Bytes::from_static(b"incr"), T)
            .unwrap();
        assert_eq!(again, reply);
        assert_eq!(r0.metrics().service_dedup_hits.get(), 1);
        assert_eq!(r0.read_state(|c| *c), 1);
        // A second sequence number applies normally.
        let next = r0
            .submit(5, 2, CommandKind::Apply, Bytes::from_static(b"incr"), T)
            .unwrap();
        assert_eq!(next.as_ref(), 2u64.to_be_bytes());
        for r in &replicas {
            r.shutdown();
        }
    }

    #[test]
    fn duplicate_submission_across_replicas_applies_once() {
        let replicas = counters(4);
        // The same (client, seq) lands at two different replicas — the
        // retry-after-failover pattern. Both order it; exactly one apply.
        let h0 = {
            let r = Arc::clone(&replicas[0]);
            std::thread::spawn(move || {
                r.submit(9, 1, CommandKind::Apply, Bytes::from_static(b"incr"), T)
            })
        };
        let h1 = {
            let r = Arc::clone(&replicas[1]);
            std::thread::spawn(move || {
                r.submit(9, 1, CommandKind::Apply, Bytes::from_static(b"incr"), T)
            })
        };
        let a = h0.join().unwrap().unwrap();
        let b = h1.join().unwrap().unwrap();
        assert_eq!(a.as_ref(), 1u64.to_be_bytes());
        assert_eq!(a, b, "both submitters must observe the same reply");
        for r in &replicas {
            r.barrier().unwrap();
            assert_eq!(r.read_state(|c| *c), 1, "applied exactly once");
        }
        let skipped: u64 = replicas
            .iter()
            .map(|r| r.metrics().service_dup_apply_skipped.get())
            .sum();
        assert!(skipped > 0, "the ordered duplicate must be counted");
        for r in &replicas {
            r.shutdown();
        }
    }

    #[test]
    fn ordered_read_sees_prior_writes() {
        let replicas = counters(4);
        replicas[2]
            .submit(3, 1, CommandKind::Apply, Bytes::from_static(b"incr"), T)
            .unwrap();
        let read = replicas[2]
            .submit(3, 2, CommandKind::OrderedRead, Bytes::new(), T)
            .unwrap();
        assert_eq!(read.as_ref(), 1u64.to_be_bytes());
        assert!(replicas[2].metrics().service_reads_ordered.get() >= 1);
        for r in &replicas {
            r.shutdown();
        }
    }

    #[test]
    fn session_table_check_transitions() {
        let mut t = SessionTable::new(8);
        assert_eq!(t.check(1, 1), SessionCheck::New);
        assert!(t.begin(1, 1));
        assert_eq!(t.check(1, 1), SessionCheck::InFlight);
        assert!(t.complete(1, 1, Bytes::from_static(b"r1")));
        assert_eq!(
            t.check(1, 1),
            SessionCheck::Cached(Bytes::from_static(b"r1"))
        );
        assert!(t.is_applied(1, 1));
        assert_eq!(t.cached(1, 1), Some(Bytes::from_static(b"r1")));
        assert!(t.complete(1, 2, Bytes::from_static(b"r2")));
        assert_eq!(t.check(1, 1), SessionCheck::Stale);
        assert_eq!(t.check(1, 3), SessionCheck::New);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn session_table_eviction_never_evicts_in_flight() {
        let mut t = SessionTable::new(2);
        assert!(t.begin(1, 1)); // pinned by a live in-flight request
        assert!(t.complete(2, 1, Bytes::from_static(b"a")));
        // Table is at capacity {1 (pinned), 2}; a third client must evict
        // client 2, never the pinned client 1.
        assert!(t.complete(3, 1, Bytes::from_static(b"b")));
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.check(1, 1),
            SessionCheck::InFlight,
            "pinned session evicted"
        );
        assert_eq!(
            t.check(2, 1),
            SessionCheck::New,
            "LRU unpinned session kept"
        );
        // Pin the remaining sessions too: the table must now refuse new
        // clients instead of evicting a live one.
        assert!(t.begin(3, 2));
        assert!(!t.begin(4, 1), "full of pinned sessions must refuse");
        // Completing the in-flight request unpins and readmits.
        assert!(t.complete(1, 1, Bytes::from_static(b"c")));
        assert!(t.begin(4, 1));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn session_table_abort_unpins() {
        let mut t = SessionTable::new(1);
        assert!(t.begin(1, 1));
        assert_eq!(t.check(1, 1), SessionCheck::InFlight);
        t.abort(1, 1);
        assert_eq!(t.check(1, 1), SessionCheck::New, "abort restores New");
        assert_eq!(t.in_flight(), 0);
        // The session is eviction-eligible again: a new client gets in.
        assert!(t.begin(2, 1));
    }

    #[test]
    fn failed_submit_clears_in_flight_pin() {
        let replicas = counters(4);
        for r in &replicas {
            r.shutdown();
        }
        let short = Duration::from_millis(300);
        let e = replicas[0]
            .submit(5, 1, CommandKind::Apply, Bytes::from_static(b"incr"), short)
            .unwrap_err();
        assert!(matches!(e, ServiceError::Node(_)));
        // The failed submit must not leave (5, 1) pinned: a retry takes
        // the submit path again (Node error), not an InFlight wait that
        // times out against an apply that will never come.
        let e = replicas[0]
            .submit(5, 1, CommandKind::Apply, Bytes::from_static(b"incr"), short)
            .unwrap_err();
        assert!(
            matches!(e, ServiceError::Node(_)),
            "retry saw a stale in-flight pin: {e:?}"
        );
    }

    /// Satellite: snapshotting the replicated session table mid-retry and
    /// restoring it on a peer must keep a retried `(client, seq)`
    /// exactly-once across the snapshot boundary, and equal tables must
    /// encode byte-identically (digests are vote-compared).
    #[test]
    fn session_table_snapshot_restore_determinism() {
        let mut t = SessionTable::new(8);
        assert!(t.complete(7, 1, Bytes::from_static(b"r1")));
        // Mid-retry: (7, 2) submitted (in-flight at the front-end) while
        // the snapshot is cut.
        assert!(t.begin(7, 2));
        assert!(t.complete(9, 5, Bytes::from_static(b"r5")));
        let mut w = Writer::new();
        t.encode_snapshot(&mut w);
        let bytes = w.freeze();
        // Determinism: re-encoding the same table yields the same bytes.
        let mut w2 = Writer::new();
        t.encode_snapshot(&mut w2);
        assert_eq!(bytes, w2.freeze(), "snapshot encoding must be stable");
        // Restore on a "peer" and replay the retry as an ordered
        // duplicate: the restored dedup state must skip it.
        let mut restored = SessionTable::decode_snapshot(&mut Reader::new(&bytes)).unwrap();
        assert!(restored.is_applied(7, 1), "pre-snapshot apply survived");
        assert_eq!(restored.cached(7, 1), Some(Bytes::from_static(b"r1")));
        assert_eq!(
            restored.check(7, 2),
            SessionCheck::InFlight,
            "mid-retry pin survives the snapshot"
        );
        // The retried command now applies (once); a second ordered copy
        // is a duplicate by the replicated predicate.
        assert!(!restored.is_applied(7, 2));
        assert!(restored.complete(7, 2, Bytes::from_static(b"r2")));
        assert!(restored.is_applied(7, 2), "second copy dedups");
        // Round-trip again: restored tables re-encode identically, so a
        // rejoined replica's next snapshot digest matches its peers'.
        let mut w3 = Writer::new();
        restored.encode_snapshot(&mut w3);
        let reencoded = w3.freeze();
        let t2 = SessionTable::decode_snapshot(&mut Reader::new(&reencoded)).unwrap();
        let mut w4 = Writer::new();
        t2.encode_snapshot(&mut w4);
        assert_eq!(reencoded, w4.freeze());
        // Eviction decisions after restore match the original's LRU
        // clock: the stamps are replicated state.
        assert_eq!(restored.len(), 2);
    }

    #[test]
    fn session_table_snapshot_rejects_garbage() {
        // Truncated input and absurd counts must error, not panic or
        // allocate unboundedly.
        assert!(SessionTable::decode_snapshot(&mut Reader::new(&[1, 2, 3])).is_err());
        let mut w = Writer::new();
        w.u64(4).u64(0).u32(u32::MAX);
        let bytes = w.freeze();
        assert!(SessionTable::decode_snapshot(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn session_table_lru_prefers_oldest() {
        let mut t = SessionTable::new(2);
        t.complete(1, 1, Bytes::from_static(b"a"));
        t.complete(2, 1, Bytes::from_static(b"b"));
        // Touch client 1 so client 2 is the LRU.
        t.complete(1, 2, Bytes::from_static(b"c"));
        t.complete(3, 1, Bytes::from_static(b"d"));
        assert!(t.is_applied(1, 2), "recently used session survived");
        assert!(!t.is_applied(2, 1), "LRU session evicted");
    }
}
