//! Reliable broadcast — Bracha's protocol (paper §2.2).
//!
//! Properties: (1) all correct processes deliver the same messages;
//! (2) if the sender is correct the message is delivered. The protocol is
//! the classic three-step `INIT → ECHO → READY` pattern:
//!
//! 1. the sender broadcasts `(INIT, m)`;
//! 2. on `INIT`, a process broadcasts `(ECHO, m)`;
//! 3. on `⌊(n+f)/2⌋+1` `ECHO`s *or* `f+1` `READY`s for the same `m`, a
//!    process broadcasts `(READY, m)` (once);
//! 4. on `2f+1` `READY`s for the same `m`, it delivers `m`.
//!
//! One [`ReliableBroadcast`] value is the state of a single instance —
//! one broadcast by one designated sender. Higher protocols create one
//! instance per message they reliably broadcast (control block chaining,
//! §3.3).

use crate::codec::{Reader, WireError, WireMessage, Writer};
use crate::config::Group;
use crate::error::ProtocolError;
use crate::step::{FaultKind, Step};
use crate::ProcessId;
use bytes::Bytes;
use ritas_crypto::{Digest, Sha256};
use ritas_metrics::{Layer, Metrics, SpanAnnotation};
use std::collections::HashMap;

/// Digest used to compare payload equality without storing duplicates.
pub type PayloadDigest = [u8; 32];

/// Messages of the reliable broadcast protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RbMessage {
    /// The sender's initial transmission of `m`.
    Init(Bytes),
    /// A process echoing `m`.
    Echo(Bytes),
    /// A process asserting it will deliver `m`.
    Ready(Bytes),
}

impl RbMessage {
    /// The payload carried by the message.
    pub fn payload(&self) -> &Bytes {
        match self {
            RbMessage::Init(m) | RbMessage::Echo(m) | RbMessage::Ready(m) => m,
        }
    }
}

const TAG_INIT: u8 = 1;
const TAG_ECHO: u8 = 2;
const TAG_READY: u8 = 3;

impl WireMessage for RbMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            RbMessage::Init(m) => w.u8(TAG_INIT).bytes(m),
            RbMessage::Echo(m) => w.u8(TAG_ECHO).bytes(m),
            RbMessage::Ready(m) => w.u8(TAG_READY).bytes(m),
        };
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8("rb.tag")?;
        let m = r.bytes("rb.payload")?;
        match tag {
            TAG_INIT => Ok(RbMessage::Init(m)),
            TAG_ECHO => Ok(RbMessage::Echo(m)),
            TAG_READY => Ok(RbMessage::Ready(m)),
            t => Err(WireError::InvalidTag {
                what: "rb.tag",
                tag: t,
            }),
        }
    }
}

/// The step type produced by a reliable broadcast instance: outgoing
/// [`RbMessage`]s plus, at most once, the delivered payload.
pub type RbStep = Step<RbMessage, Bytes>;

/// State of one reliable broadcast instance.
///
/// # Example
///
/// Three correct processes plus one silent one (`n = 4`, `f = 1`): driving
/// the message flow by hand delivers the payload at a receiver.
///
/// ```
/// use ritas::config::Group;
/// use ritas::rb::{ReliableBroadcast, RbMessage};
/// use bytes::Bytes;
///
/// let g = Group::new(4)?;
/// let mut sender = ReliableBroadcast::new(g, 0, 0);
/// let mut receiver = ReliableBroadcast::new(g, 1, 0);
///
/// let m = Bytes::from_static(b"hello");
/// let init = sender.broadcast(m.clone())?;
/// // Receiver gets INIT, echoes; then enough ECHOs and READYs arrive.
/// let _ = receiver.handle_message(0, RbMessage::Init(m.clone()));
/// for p in 0..3 {
///     let _ = receiver.handle_message(p, RbMessage::Echo(m.clone()));
/// }
/// let mut delivered = None;
/// for p in 0..3 {
///     let step = receiver.handle_message(p, RbMessage::Ready(m.clone()));
///     delivered = step.outputs.into_iter().next().or(delivered);
/// }
/// assert_eq!(delivered.as_deref(), Some(&b"hello"[..]));
/// # drop(init);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReliableBroadcast {
    group: Group,
    me: ProcessId,
    sender: ProcessId,
    sent_init: bool,
    sent_echo: bool,
    sent_ready: bool,
    delivered: bool,
    /// Digest echoed by each process (one `ECHO` counted per process).
    echoes: Vec<Option<PayloadDigest>>,
    /// Digest `READY`ed by each process.
    readies: Vec<Option<PayloadDigest>>,
    /// Digest of the sender's `INIT`, to flag equivocation.
    init_digest: Option<PayloadDigest>,
    /// Whether a value split (two distinct digests among the INIT and
    /// the echoes) was already reported for this instance.
    split_reported: bool,
    /// First process whose accepted INIT/ECHO established each digest —
    /// the endpoints named when a split is reported.
    first_holder: HashMap<PayloadDigest, ProcessId>,
    /// Payload bytes per digest (kept so `READY`/delivery can be produced
    /// from whichever message first carried the winning payload).
    payloads: HashMap<PayloadDigest, Bytes>,
    metrics: Metrics,
    /// Span path of this instance along the control-block chain; set by
    /// the owner (stack or parent protocol), `None` on free-standing
    /// instances.
    span_path: Option<String>,
}

impl ReliableBroadcast {
    /// Creates the instance for a broadcast by `sender`, as seen by `me`.
    ///
    /// # Panics
    ///
    /// Panics if `me` or `sender` are outside the group.
    pub fn new(group: Group, me: ProcessId, sender: ProcessId) -> Self {
        assert!(group.contains(me), "me out of group");
        assert!(group.contains(sender), "sender out of group");
        ReliableBroadcast {
            group,
            me,
            sender,
            sent_init: false,
            sent_echo: false,
            sent_ready: false,
            delivered: false,
            echoes: vec![None; group.n()],
            readies: vec![None; group.n()],
            init_digest: None,
            split_reported: false,
            first_holder: HashMap::new(),
            payloads: HashMap::new(),
            metrics: Metrics::default(),
            span_path: None,
        }
    }

    /// Attaches the process-wide metric registry (a free-standing
    /// instance keeps its private default registry otherwise).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Assigns this instance's span path and opens its span. Call after
    /// [`ReliableBroadcast::set_metrics`], at instance-creation time.
    pub fn set_span_path(&mut self, path: String) {
        self.metrics.span_open(path.clone(), Layer::Rb);
        self.span_path = Some(path);
    }

    /// The designated sender of this instance.
    pub fn sender(&self) -> ProcessId {
        self.sender
    }

    /// Whether this instance has delivered its payload.
    pub fn is_delivered(&self) -> bool {
        self.delivered
    }

    /// Starts the broadcast (sender only): emits `(INIT, m)`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotSender`] if `me` is not the designated sender;
    /// [`ProtocolError::AlreadyStarted`] on a second call.
    pub fn broadcast(&mut self, payload: Bytes) -> Result<RbStep, ProtocolError> {
        if self.me != self.sender {
            return Err(ProtocolError::NotSender {
                me: self.me,
                sender: self.sender,
            });
        }
        if self.sent_init {
            return Err(ProtocolError::AlreadyStarted);
        }
        self.sent_init = true;
        Ok(Step::broadcast(RbMessage::Init(payload)))
    }

    fn digest(payload: &Bytes) -> PayloadDigest {
        Sha256::digest(payload)
    }

    fn remember(&mut self, payload: &Bytes) -> PayloadDigest {
        let d = Self::digest(payload);
        self.payloads.entry(d).or_insert_with(|| payload.clone());
        d
    }

    fn count(slots: &[Option<PayloadDigest>], d: &PayloadDigest) -> usize {
        slots.iter().filter(|s| s.as_ref() == Some(d)).count()
    }

    /// Reports a value split — two distinct digests among the `INIT` and
    /// the accepted echoes — once per instance. A correct sender induces
    /// a single digest at every correct process, so a split is hard
    /// evidence of misbehaviour even when every individual message is
    /// well-formed (the per-slot checks only catch a process
    /// contradicting *itself*). A receiver cannot tell a two-faced sender
    /// from a lying relay, so the fault names the smallest set certain to
    /// contain the culprit: the sender plus the first holder of each
    /// conflicting digest. Attribution is evidence of conflict, not proof
    /// of guilt — but in failure-free runs no split ever occurs.
    fn report_split(&mut self, step: &mut RbStep) {
        if self.split_reported {
            return;
        }
        let mut seen: Vec<PayloadDigest> = Vec::new();
        for d in self.init_digest.iter().chain(self.echoes.iter().flatten()) {
            if !seen.contains(d) {
                seen.push(*d);
            }
            if seen.len() == 2 {
                break;
            }
        }
        let &[a, b] = seen.as_slice() else {
            return;
        };
        self.split_reported = true;
        let mut suspects = vec![self.sender];
        for d in [a, b] {
            if let Some(&h) = self.first_holder.get(&d) {
                if !suspects.contains(&h) {
                    suspects.push(h);
                }
            }
        }
        for s in suspects {
            step.push_fault(s, FaultKind::Equivocation);
        }
    }

    /// Handles a protocol message from `from`.
    ///
    /// Messages from corrupt processes (duplicate, equivocating,
    /// not-entitled) are ignored and reported as faults on the step.
    pub fn handle_message(&mut self, from: ProcessId, message: RbMessage) -> RbStep {
        if !self.group.contains(from) {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        match message {
            RbMessage::Init(m) => {
                self.metrics.rb_init_recv.inc();
                self.on_init(from, m)
            }
            RbMessage::Echo(m) => {
                self.metrics.rb_echo_recv.inc();
                self.on_echo(from, m)
            }
            RbMessage::Ready(m) => {
                self.metrics.rb_ready_recv.inc();
                self.on_ready(from, m)
            }
        }
    }

    fn on_init(&mut self, from: ProcessId, m: Bytes) -> RbStep {
        if from != self.sender {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        let d = Self::digest(&m);
        match self.init_digest {
            Some(prev) if prev != d => return Step::fault(from, FaultKind::Equivocation),
            Some(_) => return Step::none(), // duplicate
            None => {
                self.init_digest = Some(d);
                self.first_holder.entry(d).or_insert(from);
                self.remember(&m);
            }
        }
        let mut step = Step::none();
        self.report_split(&mut step);
        if !self.sent_echo {
            self.sent_echo = true;
            step.push_broadcast(RbMessage::Echo(m));
        }
        step
    }

    fn on_echo(&mut self, from: ProcessId, m: Bytes) -> RbStep {
        let d = Self::digest(&m);
        match self.echoes[from] {
            Some(prev) if prev != d => return Step::fault(from, FaultKind::Equivocation),
            Some(_) => return Step::none(),
            None => {
                self.echoes[from] = Some(d);
                self.first_holder.entry(d).or_insert(from);
                self.remember(&m);
            }
        }
        let mut step = Step::none();
        self.report_split(&mut step);
        if !self.sent_ready && Self::count(&self.echoes, &d) >= self.group.echo_threshold() {
            self.sent_ready = true;
            // `from` closed the echo quorum — the last-arriving process
            // on this step of the critical path (cluster forensics).
            if let Some(path) = &self.span_path {
                self.metrics
                    .span_annotate(path, SpanAnnotation::QuorumMet, from as u64);
            }
            step.push_broadcast(RbMessage::Ready(m));
        }
        step
    }

    fn on_ready(&mut self, from: ProcessId, m: Bytes) -> RbStep {
        let d = Self::digest(&m);
        match self.readies[from] {
            Some(prev) if prev != d => return Step::fault(from, FaultKind::Equivocation),
            Some(_) => return Step::none(),
            None => {
                self.readies[from] = Some(d);
                self.remember(&m);
            }
        }
        let mut step = Step::none();
        let count = Self::count(&self.readies, &d);
        if !self.sent_ready && count >= self.group.one_correct() {
            self.sent_ready = true;
            step.push_broadcast(RbMessage::Ready(m.clone()));
        }
        if !self.delivered && count >= self.group.byzantine_majority() {
            self.delivered = true;
            self.metrics.rb_delivered.inc();
            self.metrics
                .trace(Layer::Rb, "deliver", format!("rb:{}", self.sender), 0);
            if let Some(path) = &self.span_path {
                // `from` closed the 2f+1 READY quorum that gates delivery.
                self.metrics
                    .span_annotate(path, SpanAnnotation::QuorumMet, from as u64);
                self.metrics.span_close(path);
            }
            step.push_output(m);
        }
        step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::Target;

    fn group4() -> Group {
        Group::new(4).unwrap()
    }

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    /// Delivers every `Outgoing` of `step` from process `from` to all
    /// instances, returning delivered payloads per process.
    fn run_to_quiescence(
        instances: &mut [ReliableBroadcast],
        initial: RbStep,
    ) -> Vec<Option<Bytes>> {
        let n = instances.len();
        let mut delivered: Vec<Option<Bytes>> = vec![None; n];
        // Queue of (from, to, message).
        let mut queue: Vec<(ProcessId, ProcessId, RbMessage)> = Vec::new();
        let push = |queue: &mut Vec<_>,
                    from: ProcessId,
                    step: RbStep,
                    delivered: &mut Vec<Option<Bytes>>| {
            for out in step.messages {
                match out.target {
                    Target::All => {
                        for to in 0..n {
                            queue.push((from, to, out.message.clone()));
                        }
                    }
                    Target::One(to) => queue.push((from, to, out.message.clone())),
                }
            }
            for o in step.outputs {
                assert!(delivered[from].is_none(), "double delivery at {from}");
                delivered[from] = Some(o);
            }
        };
        push(&mut queue, instances[0].me, initial, &mut delivered);
        // Fix: the initial step came from the instance that generated it.
        while let Some((from, to, msg)) = queue.pop() {
            let step = instances[to].handle_message(from, msg);
            let me = instances[to].me;
            push(&mut queue, me, step, &mut delivered);
        }
        delivered
    }

    #[test]
    fn message_codec_roundtrip() {
        for msg in [
            RbMessage::Init(payload("a")),
            RbMessage::Echo(payload("")),
            RbMessage::Ready(payload("xyz")),
        ] {
            assert_eq!(RbMessage::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn codec_rejects_bad_tag() {
        let mut w = Writer::new();
        w.u8(9).bytes(b"m");
        assert!(matches!(
            RbMessage::from_bytes(&w.freeze()),
            Err(WireError::InvalidTag { .. })
        ));
    }

    #[test]
    fn all_correct_deliver_senders_payload() {
        let g = group4();
        let mut insts: Vec<_> = (0..4).map(|me| ReliableBroadcast::new(g, me, 0)).collect();
        let init = insts[0].broadcast(payload("m")).unwrap();
        let delivered = run_to_quiescence(&mut insts, init);
        for d in &delivered {
            assert_eq!(d.as_ref(), Some(&payload("m")));
        }
    }

    #[test]
    fn delivery_with_one_silent_process() {
        // Process 3 never participates (crash): the other three still
        // deliver (n=4, f=1: echo threshold 3, ready threshold 3).
        let g = group4();
        let mut insts: Vec<_> = (0..3).map(|me| ReliableBroadcast::new(g, me, 0)).collect();
        let init = insts[0].broadcast(payload("m")).unwrap();
        let delivered = run_to_quiescence(&mut insts, init);
        for d in &delivered {
            assert_eq!(d.as_ref(), Some(&payload("m")));
        }
    }

    #[test]
    fn non_sender_cannot_broadcast() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 1, 0);
        assert_eq!(
            rb.broadcast(payload("m")).unwrap_err(),
            ProtocolError::NotSender { me: 1, sender: 0 }
        );
    }

    #[test]
    fn double_broadcast_rejected() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 0, 0);
        let _ = rb.broadcast(payload("m")).unwrap();
        assert_eq!(
            rb.broadcast(payload("m")).unwrap_err(),
            ProtocolError::AlreadyStarted
        );
    }

    #[test]
    fn init_from_non_sender_faulted() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 1, 0);
        let step = rb.handle_message(2, RbMessage::Init(payload("evil")));
        assert_eq!(step.faults[0].kind, FaultKind::NotEntitled);
        assert!(step.messages.is_empty());
    }

    #[test]
    fn equivocating_init_faulted() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 1, 0);
        let _ = rb.handle_message(0, RbMessage::Init(payload("a")));
        let step = rb.handle_message(0, RbMessage::Init(payload("b")));
        assert_eq!(step.faults[0].kind, FaultKind::Equivocation);
    }

    #[test]
    fn duplicate_init_ignored_silently() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 1, 0);
        let _ = rb.handle_message(0, RbMessage::Init(payload("a")));
        let step = rb.handle_message(0, RbMessage::Init(payload("a")));
        assert!(step.is_empty());
    }

    #[test]
    fn echo_counted_once_per_process() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 1, 0);
        // Three echoes from the SAME process must not reach the threshold.
        for _ in 0..3 {
            let step = rb.handle_message(2, RbMessage::Echo(payload("m")));
            assert!(step.messages.is_empty());
        }
        // Echo threshold is 3 distinct processes for n=4.
        let _ = rb.handle_message(0, RbMessage::Echo(payload("m")));
        let step = rb.handle_message(3, RbMessage::Echo(payload("m")));
        assert!(matches!(step.messages[0].message, RbMessage::Ready(_)));
    }

    #[test]
    fn equivocating_echo_faulted() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 1, 0);
        let _ = rb.handle_message(2, RbMessage::Echo(payload("a")));
        let step = rb.handle_message(2, RbMessage::Echo(payload("b")));
        assert_eq!(step.faults[0].kind, FaultKind::Equivocation);
    }

    #[test]
    fn value_split_names_sender_and_conflict_endpoints_once() {
        // A sender that INITs "a" to some processes and "b" to others is
        // invisible to per-slot checks (each echoer is self-consistent),
        // but the conflicting echoes expose the split. The fault names
        // the sender plus the first holder of each conflicting digest,
        // exactly once per instance.
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 1, 0);
        let s0 = rb.handle_message(2, RbMessage::Echo(payload("a")));
        assert!(s0.faults.is_empty());
        let s1 = rb.handle_message(3, RbMessage::Echo(payload("b")));
        let suspects: Vec<ProcessId> = s1.faults.iter().map(|f| f.from).collect();
        assert_eq!(suspects, vec![0, 2, 3]);
        assert!(s1.faults.iter().all(|f| f.kind == FaultKind::Equivocation));
        // Further conflicting evidence does not re-report.
        let s2 = rb.handle_message(0, RbMessage::Echo(payload("c")));
        assert!(s2.faults.is_empty());
    }

    #[test]
    fn init_conflicting_with_echo_is_a_split() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 1, 0);
        let _ = rb.handle_message(2, RbMessage::Echo(payload("a")));
        let step = rb.handle_message(0, RbMessage::Init(payload("b")));
        // Suspects: sender 0 (holds "b" via its INIT) and echoer 2
        // (first holder of "a").
        let suspects: Vec<ProcessId> = step.faults.iter().map(|f| f.from).collect();
        assert_eq!(suspects, vec![0, 2]);
        assert!(step
            .faults
            .iter()
            .all(|f| f.kind == FaultKind::Equivocation));
        // The INIT still triggers our own echo despite the report.
        assert!(matches!(step.messages[0].message, RbMessage::Echo(_)));
    }

    #[test]
    fn ready_amplification_from_f_plus_1_readies() {
        // A process that saw no INIT/ECHO still sends READY after f+1
        // READYs, and delivers after 2f+1.
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 1, 0);
        let s1 = rb.handle_message(2, RbMessage::Ready(payload("m")));
        assert!(s1.messages.is_empty());
        let s2 = rb.handle_message(3, RbMessage::Ready(payload("m")));
        assert!(matches!(s2.messages[0].message, RbMessage::Ready(_)));
        assert!(s2.outputs.is_empty());
        let s3 = rb.handle_message(0, RbMessage::Ready(payload("m")));
        assert_eq!(s3.outputs, vec![payload("m")]);
        assert!(rb.is_delivered());
    }

    #[test]
    fn delivery_happens_once() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 0, 0);
        for p in 1..4 {
            let _ = rb.handle_message(p, RbMessage::Ready(payload("m")));
        }
        assert!(rb.is_delivered());
        // A fourth ready (own) must not deliver again.
        let step = rb.handle_message(0, RbMessage::Ready(payload("m")));
        assert!(step.outputs.is_empty());
    }

    #[test]
    fn mixed_payload_readies_do_not_deliver() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 0, 0);
        let _ = rb.handle_message(1, RbMessage::Ready(payload("a")));
        let _ = rb.handle_message(2, RbMessage::Ready(payload("b")));
        let step = rb.handle_message(3, RbMessage::Ready(payload("c")));
        assert!(step.outputs.is_empty());
        assert!(!rb.is_delivered());
    }

    #[test]
    fn out_of_group_sender_faulted() {
        let g = group4();
        let mut rb = ReliableBroadcast::new(g, 0, 0);
        let step = rb.handle_message(7, RbMessage::Echo(payload("m")));
        assert_eq!(step.faults[0].kind, FaultKind::NotEntitled);
    }

    #[test]
    fn larger_group_delivers() {
        let g = Group::new(7).unwrap();
        let mut insts: Vec<_> = (0..7).map(|me| ReliableBroadcast::new(g, me, 3)).collect();
        let init = insts[3].broadcast(payload("wide")).unwrap();
        // Patch: initial step originates from process 3.
        let mut delivered: Vec<Option<Bytes>> = vec![None; 7];
        let mut queue: Vec<(ProcessId, ProcessId, RbMessage)> = Vec::new();
        for out in init.messages {
            if let Target::All = out.target {
                for to in 0..7 {
                    queue.push((3, to, out.message.clone()));
                }
            }
        }
        while let Some((from, to, msg)) = queue.pop() {
            let step = insts[to].handle_message(from, msg);
            for out in step.messages {
                match out.target {
                    Target::All => {
                        for t in 0..7 {
                            queue.push((to, t, out.message.clone()));
                        }
                    }
                    Target::One(t) => queue.push((to, t, out.message.clone())),
                }
            }
            for o in step.outputs {
                delivered[to] = Some(o);
            }
        }
        for d in &delivered {
            assert_eq!(d.as_ref(), Some(&payload("wide")));
        }
    }
}
