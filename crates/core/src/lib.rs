//! # RITAS — Randomized Intrusion-Tolerant Asynchronous Services
//!
//! A reproduction of the protocol stack from *"Randomized
//! Intrusion-Tolerant Asynchronous Services"* (Moniz, Neves, Correia,
//! Veríssimo — DSN 2006): a stack of Byzantine-fault-tolerant agreement
//! protocols for fully asynchronous systems that is
//!
//! * **asynchronous** — termination relies on randomization (Ben-Or-style
//!   local coins), never on timing assumptions;
//! * **optimally resilient** — tolerates `f = ⌊(n-1)/3⌋` corrupt
//!   processes;
//! * **signature-free** — integrity comes from pairwise shared keys and
//!   hash MACs, no public-key cryptography anywhere;
//! * **leader-free** — all decisions are taken in a distributed way.
//!
//! The stack, bottom-up (paper Figure 1):
//!
//! | Module | Protocol |
//! |---|---|
//! | [`rb`] | reliable broadcast (Bracha) |
//! | [`eb`] | echo broadcast (matrix echo, Reiter-derived) |
//! | [`bc`] | randomized binary consensus (Bracha) |
//! | [`mvc`] | multi-valued consensus (Correia et al.) |
//! | [`vc`] | vector consensus |
//! | [`ab`] | atomic broadcast |
//!
//! All protocol state machines are *sans-io* (see [`step::Step`]): they can
//! be driven by the threaded [`node`] runtime over any
//! [`ritas_transport::Transport`], by the deterministic [`testing`]
//! cluster, or by the discrete-event simulator in the `ritas-sim` crate.
//!
//! # Quickstart
//!
//! Four processes on an in-memory hub; every process atomically
//! broadcasts one message and all observe the same total order:
//!
//! ```
//! use ritas::node::{Node, SessionConfig};
//! use bytes::Bytes;
//!
//! let nodes = Node::cluster(SessionConfig::new(4)?)?;
//! let mut handles = Vec::new();
//! for node in nodes {
//!     handles.push(std::thread::spawn(move || {
//!         let mine = format!("hello from {}", node.id());
//!         node.atomic_broadcast(Bytes::from(mine)).unwrap();
//!         let mut order = Vec::new();
//!         for _ in 0..4 {
//!             order.push(node.atomic_recv().unwrap().id);
//!         }
//!         node.shutdown();
//!         order
//!     }));
//! }
//! let orders: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
//! assert!(orders.windows(2).all(|w| w[0] == w[1]), "total order");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ab;
pub mod adversary;
pub mod bc;
pub mod causal;
pub mod codec;
pub mod config;
pub mod eb;
pub mod error;
pub mod fifo;
pub mod invariants;
pub mod mvc;
pub mod node;
pub mod rb;
pub mod recovery;
pub mod rsm;
pub mod service;
pub mod stack;
pub mod step;
pub mod testing;
pub mod vc;

/// Identifier of a process in the group (re-exported from the transport).
pub use ritas_transport::ProcessId;

pub use config::Group;
pub use error::ProtocolError;
pub use step::{Fault, FaultKind, Outgoing, Step, Target};
