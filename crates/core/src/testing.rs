//! Deterministic in-memory cluster for driving [`crate::stack::Stack`]s.
//!
//! The cluster is a zero-time message-passing harness: it holds one stack
//! per process and a queue of in-flight frames, and drains the queue in a
//! seeded pseudo-random order (every interleaving is a legal asynchronous
//! schedule, so randomizing it is a cheap schedule-exploration tool for
//! tests — rerun with different seeds to explore different schedules).
//! Timing-aware execution lives in the `ritas-sim` crate; this harness is
//! for functional tests of the protocol logic.

use crate::config::Group;
use crate::stack::{Output, Stack, StackStep};
use crate::step::Target;
use crate::ProcessId;
use bytes::Bytes;
use ritas_crypto::KeyTable;

/// How in-flight frames are picked for delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Seeded pseudo-random order (default): each run explores one legal
    /// asynchronous interleaving, determined by the cluster seed.
    #[default]
    Random,
    /// Strict FIFO: messages delivered in send order.
    Fifo,
    /// LIFO: newest messages first — an adversarial-ish schedule that
    /// maximizes reordering across protocol instances.
    Lifo,
}

impl Schedule {
    /// Every schedule, in matrix order (the `schedule` axis of the
    /// adversarial conformance matrix).
    pub const ALL: [Schedule; 3] = [Schedule::Random, Schedule::Fifo, Schedule::Lifo];
}

impl core::fmt::Display for Schedule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Schedule::Random => "random",
            Schedule::Fifo => "fifo",
            Schedule::Lifo => "lifo",
        })
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "random" => Ok(Schedule::Random),
            "fifo" => Ok(Schedule::Fifo),
            "lifo" => Ok(Schedule::Lifo),
            other => Err(format!(
                "unknown schedule {other:?} (expected random, fifo or lifo)"
            )),
        }
    }
}

/// A deterministic cluster of `n` stacks connected by reliable links.
///
/// # Example
///
/// ```
/// use ritas::testing::Cluster;
/// use ritas::stack::Output;
/// use bytes::Bytes;
///
/// let mut cluster = Cluster::new(4, 42);
/// let (_key, step) = cluster.stack_mut(0).rb_broadcast(Bytes::from_static(b"hi"));
/// cluster.absorb(0, step);
/// cluster.run();
/// assert!(cluster.outputs(3).iter().any(|o| matches!(
///     o,
///     Output::RbDelivered { payload, .. } if payload.as_ref() == b"hi"
/// )));
/// ```
#[derive(Debug)]
pub struct Cluster {
    stacks: Vec<Stack>,
    queue: Vec<(ProcessId, ProcessId, Bytes)>,
    outputs: Vec<Vec<Output>>,
    schedule: Schedule,
    rng_state: u64,
    crashed: Vec<bool>,
    /// Processes whose outgoing frames are randomly mutated (dropped,
    /// duplicated, bit-flipped or replaced with garbage) — a wire-level
    /// Byzantine adversary.
    corrupted: Vec<bool>,
    /// Protocol-aware Byzantine strategies (see [`crate::adversary`]):
    /// when set for a process, every outbound frame is decoded and run
    /// through the strategy once per destination before it travels.
    strategies: Vec<Option<Box<dyn crate::adversary::Strategy>>>,
    /// Processes whose inbound frames are currently withheld (extreme
    /// asynchrony: the frames are buffered, not lost, and re-enter the
    /// queue on release — delay, never loss, per the reliable-channel
    /// model).
    held_inbound: Vec<bool>,
    stash: Vec<(ProcessId, ProcessId, Bytes)>,
    /// Links (as normalized unordered pairs) currently severed: frames on
    /// them are buffered in `link_stash`, not lost, and re-enter the
    /// queue on heal — the harness twin of a TCP socket kill the session
    /// layer recovers from by reconnect + retransmit.
    severed: std::collections::HashSet<(ProcessId, ProcessId)>,
    link_stash: Vec<(ProcessId, ProcessId, Bytes)>,
    delivered_frames: u64,
}

impl Cluster {
    /// Creates a cluster of `n` correct processes with dealt keys.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    pub fn new(n: usize, seed: u64) -> Self {
        Self::with_stacks(
            (0..n)
                .map(|me| {
                    let group = Group::new(n).expect("n >= 4");
                    let table = KeyTable::dealer(n, seed);
                    Stack::new(group, me, table.view_of(me), seed ^ ((me as u64) << 32))
                })
                .collect(),
            seed,
        )
    }

    /// Creates a cluster from pre-built stacks (custom configs, Byzantine
    /// strategies).
    ///
    /// # Panics
    ///
    /// Panics if `stacks` is empty.
    pub fn with_stacks(stacks: Vec<Stack>, seed: u64) -> Self {
        assert!(!stacks.is_empty(), "cluster needs stacks");
        let n = stacks.len();
        Cluster {
            stacks,
            queue: Vec::new(),
            outputs: vec![Vec::new(); n],
            schedule: Schedule::Random,
            rng_state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
            crashed: vec![false; n],
            corrupted: vec![false; n],
            strategies: (0..n).map(|_| None).collect(),
            held_inbound: vec![false; n],
            stash: Vec::new(),
            severed: std::collections::HashSet::new(),
            link_stash: Vec::new(),
            delivered_frames: 0,
        }
    }

    /// Sets the delivery schedule.
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.schedule = schedule;
    }

    /// Crashes process `p`: its outgoing frames are dropped and inbound
    /// frames are discarded from now on.
    pub fn crash(&mut self, p: ProcessId) {
        self.crashed[p] = true;
    }

    /// Starts withholding all inbound frames for `p` — extreme (but
    /// model-faithful) asynchrony: the frames are buffered and re-enter
    /// the network when [`Cluster::release`] is called; nothing is lost.
    pub fn hold(&mut self, p: ProcessId) {
        self.held_inbound[p] = true;
    }

    /// Stops withholding and re-queues everything buffered for `p`.
    pub fn release(&mut self, p: ProcessId) {
        self.held_inbound[p] = false;
        let (for_p, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.stash)
            .into_iter()
            .partition(|(_, to, _)| *to == p);
        self.stash = rest;
        self.queue.extend(for_p);
    }

    fn norm_pair(a: ProcessId, b: ProcessId) -> (ProcessId, ProcessId) {
        (a.min(b), a.max(b))
    }

    /// Severs the point-to-point link between `a` and `b`, both
    /// directions: frames on it are buffered (delay, never loss — the
    /// reliable-channel model the real mesh's session layer restores by
    /// reconnecting and retransmitting) until [`Cluster::heal_link`].
    pub fn sever_link(&mut self, a: ProcessId, b: ProcessId) {
        self.severed.insert(Self::norm_pair(a, b));
    }

    /// Restores the link between `a` and `b` and re-queues every frame
    /// buffered on it while severed.
    pub fn heal_link(&mut self, a: ProcessId, b: ProcessId) {
        let pair = Self::norm_pair(a, b);
        self.severed.remove(&pair);
        let (for_link, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.link_stash)
            .into_iter()
            .partition(|(f, t, _)| Self::norm_pair(*f, *t) == pair);
        self.link_stash = rest;
        self.queue.extend(for_link);
    }

    /// Marks process `p` as a wire-level Byzantine adversary: every frame
    /// it sends is randomly dropped, duplicated, bit-flipped or replaced
    /// with garbage (seeded). The remaining correct processes must still
    /// satisfy their protocols' agreement/validity/order properties —
    /// this models a corrupt process that emits arbitrary bytes rather
    /// than one that merely follows a clever high-level strategy.
    pub fn corrupt(&mut self, p: ProcessId) {
        self.corrupted[p] = true;
    }

    /// Installs a protocol-aware Byzantine [`crate::adversary::Strategy`]
    /// for process `p`: every frame its stack emits is decoded, handed to
    /// the strategy once per destination (broadcasts included — the basis
    /// of equivocation), and replaced by whatever frames the strategy
    /// returns. Takes precedence over [`Cluster::corrupt`]'s wire-level
    /// mutation for the same process.
    pub fn set_strategy(&mut self, p: ProcessId, strategy: Box<dyn crate::adversary::Strategy>) {
        self.strategies[p] = Some(strategy);
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.stacks.len()
    }

    /// Applies the wire-level mutation to a frame from a corrupted
    /// process; returns the (0, 1 or 2) frames that actually travel.
    fn mutate(&mut self, frame: Bytes) -> Vec<Bytes> {
        match self.next_rand() % 5 {
            // Dropped entirely.
            0 => vec![],
            // Duplicated verbatim.
            1 => vec![frame.clone(), frame],
            // One random bit flipped.
            2 => {
                let mut v = frame.to_vec();
                if !v.is_empty() {
                    let i = (self.next_rand() as usize) % v.len();
                    let bit = (self.next_rand() % 8) as u32;
                    v[i] ^= 1 << bit;
                }
                vec![Bytes::from(v)]
            }
            // Replaced by random garbage of random length.
            3 => {
                let len = (self.next_rand() as usize) % 64;
                let v: Vec<u8> = (0..len).map(|_| (self.next_rand() & 0xff) as u8).collect();
                vec![Bytes::from(v)]
            }
            // Passed through unchanged (intermittent honesty).
            _ => vec![frame],
        }
    }

    /// Access to a process's stack, e.g. to issue service requests.
    pub fn stack_mut(&mut self, p: ProcessId) -> &mut Stack {
        &mut self.stacks[p]
    }

    /// Process `p`'s observability registry (each stack in the cluster
    /// owns a private one).
    pub fn metrics(&self, p: ProcessId) -> &ritas_metrics::Metrics {
        self.stacks[p].metrics()
    }

    /// The outputs process `p` has produced so far, in order.
    pub fn outputs(&self, p: ProcessId) -> &[Output] {
        &self.outputs[p]
    }

    /// Frames delivered since creation (a rough message-complexity meter).
    pub fn delivered_frames(&self) -> u64 {
        self.delivered_frames
    }

    /// Queues the messages of `step` as in-flight frames from `p` and
    /// records its outputs.
    pub fn absorb(&mut self, p: ProcessId, step: StackStep) {
        if self.crashed[p] {
            return;
        }
        let n = self.stacks.len();
        for out in step.messages {
            if self.strategies[p].is_some() {
                let dests: Vec<ProcessId> = match out.target {
                    Target::All => (0..n).collect(),
                    Target::One(to) => vec![to],
                };
                match crate::adversary::decode_frame(&out.message) {
                    Some((key, msg)) => {
                        let strategy = self.strategies[p].as_mut().expect("checked above");
                        for to in dests {
                            let ctx = crate::adversary::SendCtx { me: p, to, n };
                            for frame in strategy.rewrite(&ctx, key, msg.clone()) {
                                self.queue.push((p, to, frame));
                            }
                        }
                    }
                    // An honest stack never emits an undecodable frame;
                    // if one appears (strategy-injected), pass it through.
                    None => {
                        for to in dests {
                            self.queue.push((p, to, out.message.clone()));
                        }
                    }
                }
                continue;
            }
            let frames = if self.corrupted[p] {
                self.mutate(out.message)
            } else {
                vec![out.message]
            };
            for frame in frames {
                match out.target {
                    Target::All => {
                        for to in 0..n {
                            self.queue.push((p, to, frame.clone()));
                        }
                    }
                    Target::One(to) => self.queue.push((p, to, frame.clone())),
                }
            }
        }
        self.outputs[p].extend(step.outputs);
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Delivers exactly one in-flight frame. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        let idx = match self.schedule {
            Schedule::Fifo => 0,
            Schedule::Lifo => self.queue.len() - 1,
            Schedule::Random => (self.next_rand() as usize) % self.queue.len(),
        };
        let (from, to, frame) = self.queue.remove(idx);
        if self.crashed[to] {
            return true;
        }
        if self.severed.contains(&Self::norm_pair(from, to)) {
            self.link_stash.push((from, to, frame));
            return true;
        }
        if self.held_inbound[to] {
            self.stash.push((from, to, frame));
            return true;
        }
        self.delivered_frames += 1;
        let step = self.stacks[to].handle_frame(from, frame);
        self.absorb(to, step);
        true
    }

    /// Runs until no frames are in flight.
    ///
    /// # Panics
    ///
    /// Panics after 50 million deliveries (runaway-execution guard).
    pub fn run(&mut self) {
        let mut iterations: u64 = 0;
        while self.step() {
            iterations += 1;
            assert!(iterations < 50_000_000, "runaway execution");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_lifo_schedules_still_converge() {
        for schedule in [Schedule::Fifo, Schedule::Lifo, Schedule::Random] {
            let mut cluster = Cluster::new(4, 3);
            cluster.set_schedule(schedule);
            let (_k, step) = cluster.stack_mut(0).rb_broadcast(Bytes::from_static(b"s"));
            cluster.absorb(0, step);
            cluster.run();
            for p in 0..4 {
                assert!(
                    cluster.outputs(p).iter().any(|o| matches!(
                        o,
                        Output::RbDelivered { payload, .. } if payload.as_ref() == b"s"
                    )),
                    "{schedule:?} process {p}"
                );
            }
        }
    }

    #[test]
    fn crashed_process_stops_participating() {
        let mut cluster = Cluster::new(4, 4);
        cluster.crash(3);
        let (_k, step) = cluster.stack_mut(0).rb_broadcast(Bytes::from_static(b"c"));
        cluster.absorb(0, step);
        cluster.run();
        assert!(cluster.outputs(3).is_empty());
        for p in 0..3 {
            assert!(!cluster.outputs(p).is_empty(), "process {p}");
        }
    }

    #[test]
    fn wire_level_byzantine_cannot_break_bc_agreement() {
        for seed in [1u64, 2, 3, 4, 5] {
            let mut cluster = Cluster::new(4, seed);
            cluster.corrupt(3);
            for p in 0..4 {
                let step = cluster.stack_mut(p).bc_propose(1, p % 2 == 0).unwrap();
                cluster.absorb(p, step);
            }
            cluster.run();
            let decisions: Vec<bool> = (0..3)
                .filter_map(|p| {
                    cluster.outputs(p).iter().find_map(|o| match o {
                        Output::BcDecided { decision, .. } => Some(*decision),
                        _ => None,
                    })
                })
                .collect();
            assert_eq!(
                decisions.len(),
                3,
                "seed {seed}: a correct process missed a decision"
            );
            assert!(
                decisions.iter().all(|d| *d == decisions[0]),
                "seed {seed}: agreement violated under wire-level corruption"
            );
        }
    }

    #[test]
    fn wire_level_byzantine_cannot_break_ab_total_order() {
        for seed in [7u64, 8, 9] {
            let mut cluster = Cluster::new(4, seed);
            cluster.corrupt(2);
            for p in [0usize, 1, 3] {
                let (_, step) = cluster
                    .stack_mut(p)
                    .ab_broadcast(0, Bytes::from(format!("w{p}")));
                cluster.absorb(p, step);
            }
            cluster.run();
            let order = |p: usize| -> Vec<crate::ab::MsgId> {
                cluster
                    .outputs(p)
                    .iter()
                    .filter_map(|o| match o {
                        Output::AbDelivered { delivery, .. } => Some(delivery.id),
                        _ => None,
                    })
                    .collect()
            };
            let o0 = order(0);
            assert_eq!(o0.len(), 3, "seed {seed}: deliveries missing");
            for p in [1usize, 3] {
                assert_eq!(order(p), o0, "seed {seed}: order diverged at {p}");
            }
        }
    }

    #[test]
    fn severed_link_buffers_frames_until_heal() {
        let mut cluster = Cluster::new(4, 6);
        cluster.sever_link(0, 1);
        let (_id, step) = cluster
            .stack_mut(0)
            .ab_broadcast(0, Bytes::from_static(b"sv"));
        cluster.absorb(0, step);
        cluster.run();
        // The queue drained with the 0-1 link dark; frames crossed it
        // into the stash, none were lost.
        assert!(!cluster.link_stash.is_empty(), "frames buffered on link");
        cluster.heal_link(0, 1);
        cluster.run();
        assert!(cluster.link_stash.is_empty(), "heal re-queued the stash");
        for p in 0..4 {
            assert!(
                cluster
                    .outputs(p)
                    .iter()
                    .any(|o| matches!(o, Output::AbDelivered { .. })),
                "process {p} a-delivered after heal"
            );
        }
    }

    #[test]
    fn delivered_frames_counts() {
        let mut cluster = Cluster::new(4, 5);
        let (_k, step) = cluster.stack_mut(0).rb_broadcast(Bytes::from_static(b"x"));
        cluster.absorb(0, step);
        cluster.run();
        // 1 INIT broadcast + 4 ECHO broadcasts + 4 READY broadcasts,
        // 4 destinations each = 36 frames.
        assert_eq!(cluster.delivered_frames(), 36);
    }
}
