//! Deterministic (strategy × schedule × seed) conformance explorer.
//!
//! Each point of the cross-product is a [`RunSpec`]: one corrupt process
//! running a [`super::StrategyKind`] against a standard workload that
//! exercises every layer of the stack (RB, EB, BC, MVC, VC, AB) inside a
//! seeded [`Cluster`], under one delivery [`Schedule`]. The paper's
//! safety predicates ([`InvariantChecker`]) are checked after **every**
//! scheduler step, so the first violating step is also the minimal step
//! budget that exposes the bug.
//!
//! A run is a pure function of its spec — no wall clock, no OS
//! randomness — so any violation comes with a single replay command
//! ([`RunSpec::replay_command`]) that reproduces it bit-for-bit, and
//! [`shrink`] binary-searches the smallest step budget that still fails.

use super::StrategyKind;
use crate::invariants::{InvariantChecker, Violation};
use crate::testing::{Cluster, Schedule};
use bytes::Bytes;

/// One fully determined adversarial run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Group size (the corrupt process is always `n − 1`).
    pub n: usize,
    /// The Byzantine strategy under test.
    pub strategy: StrategyKind,
    /// The delivery schedule.
    pub schedule: Schedule,
    /// Seed for keys, stack coins, scheduler and strategy.
    pub seed: u64,
    /// Maximum scheduler steps before the run is cut off.
    pub max_steps: u64,
}

impl RunSpec {
    /// The single-line command that reproduces this run bit-for-bit.
    pub fn replay_command(&self) -> String {
        format!(
            "cargo run --release -p ritas-sim --bin adversary_explorer -- \
             --n {} --strategies {} --schedules {} --seed-base {} --seeds 1 --max-steps {}",
            self.n, self.strategy, self.schedule, self.seed, self.max_steps
        )
    }
}

/// What one run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Scheduler steps actually executed (≤ `max_steps`; smaller when the
    /// network drained).
    pub steps: u64,
    /// The first safety violation, with the step that exposed it.
    pub violation: Option<(u64, Violation)>,
}

/// Installs the standard all-layer workload: every process broadcasts /
/// proposes, the attacker included (so sender-side equivocation has an
/// instance to corrupt), and the checker learns what the *correct*
/// processes actually said.
fn seed_workload(cluster: &mut Cluster, checker: &mut InvariantChecker, attacker: usize) {
    let n = cluster.n();
    // Reliable + echo broadcasts: one correct sender each, plus the
    // attacker as a sender of both (its instances get no integrity
    // expectation — it may say anything; agreement must still hold).
    let payload = Bytes::from_static(b"rb-conformance");
    let (key, step) = cluster.stack_mut(0).rb_broadcast(payload.clone());
    checker.expect_broadcast(key, payload);
    cluster.absorb(0, step);
    let payload = Bytes::from_static(b"eb-conformance");
    let (key, step) = cluster.stack_mut(1).eb_broadcast(payload.clone());
    checker.expect_broadcast(key, payload);
    cluster.absorb(1, step);
    let (_, step) = cluster
        .stack_mut(attacker)
        .rb_broadcast(Bytes::from_static(b"rb-evil"));
    cluster.absorb(attacker, step);
    let (_, step) = cluster
        .stack_mut(attacker)
        .eb_broadcast(Bytes::from_static(b"eb-evil"));
    cluster.absorb(attacker, step);

    // One consensus instance per layer, all processes proposing.
    for p in 0..n {
        let value = p % 2 == 0;
        let step = cluster
            .stack_mut(p)
            .bc_propose(1, value)
            .expect("fresh tag");
        if p != attacker {
            checker.expect_bc(1, p, value);
        }
        cluster.absorb(p, step);
    }
    for p in 0..n {
        // A common value so MVC has a decidable non-⊥ candidate.
        let value = Bytes::from_static(b"mvc-conformance");
        let step = cluster
            .stack_mut(p)
            .mvc_propose(2, value.clone())
            .expect("fresh tag");
        if p != attacker {
            checker.expect_mvc(2, p, Some(value));
        }
        cluster.absorb(p, step);
    }
    for p in 0..n {
        let value = Bytes::from(format!("vc-prop-{p}"));
        let step = cluster
            .stack_mut(p)
            .vc_propose(3, value.clone())
            .expect("fresh tag");
        if p != attacker {
            checker.expect_vc(3, p, value);
        }
        cluster.absorb(p, step);
    }

    // Atomic broadcast: two correct senders and the attacker, three
    // commands each. The first command per sender flushes immediately
    // (idle trigger); the rest queue behind the in-flight window and
    // travel as a multi-command batch, so every strategy here attacks
    // the *batched* dissemination path and the total-order invariant is
    // checked over batch contents (per-command deliveries), not just
    // batch ids.
    for p in [0, n - 2, attacker] {
        for i in 0..3 {
            let payload = Bytes::from(format!("ab-msg-{p}-{i}"));
            let (id, step) = cluster.stack_mut(p).ab_broadcast(0, payload.clone());
            if p != attacker {
                checker.expect_ab(id, payload);
            }
            cluster.absorb(p, step);
        }
    }
}

/// Re-runs `spec` deterministically (no invariant checking — the
/// violation is already known) and writes per-process post-mortem
/// artifacts to `dir`: span dumps (`spans-{p}.jsonl`, readable by
/// `ritas-trace --cluster`) and flight-recorder rings
/// (`flight-{p}.bin`). Returns the paths written.
///
/// # Errors
///
/// Propagates filesystem errors creating `dir` or writing artifacts.
pub fn write_forensics(
    spec: &RunSpec,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    let attacker = spec.n - 1;
    let mut cluster = Cluster::new(spec.n, spec.seed);
    cluster.set_schedule(spec.schedule);
    cluster.set_strategy(attacker, spec.strategy.build(spec.seed ^ 0xAD5E_CA11));
    let mut checker = InvariantChecker::new(spec.n);
    checker.mark_corrupt(attacker);
    seed_workload(&mut cluster, &mut checker, attacker);
    let mut steps = 0u64;
    while steps < spec.max_steps && cluster.step() {
        steps += 1;
    }
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for p in 0..spec.n {
        let m = cluster.metrics(p);
        let span_path = dir.join(format!("spans-{p}.jsonl"));
        std::fs::write(&span_path, ritas_metrics::spans_to_jsonl(&m.spans()))?;
        written.push(span_path);
        let flight_path = dir.join(format!("flight-{p}.bin"));
        std::fs::write(&flight_path, m.flight().encode())?;
        written.push(flight_path);
    }
    Ok(written)
}

/// Executes one run: builds the cluster, installs the strategy on
/// process `n − 1`, seeds the workload, then steps the scheduler under
/// the budget, checking every safety predicate after each step.
pub fn run_spec(spec: &RunSpec) -> RunOutcome {
    let attacker = spec.n - 1;
    let mut cluster = Cluster::new(spec.n, spec.seed);
    cluster.set_schedule(spec.schedule);
    cluster.set_strategy(attacker, spec.strategy.build(spec.seed ^ 0xAD5E_CA11));
    let mut checker = InvariantChecker::new(spec.n);
    checker.mark_corrupt(attacker);
    seed_workload(&mut cluster, &mut checker, attacker);
    if let Err(v) = checker.check_cluster(&cluster) {
        return RunOutcome {
            steps: 0,
            violation: Some((0, v)),
        };
    }
    let mut steps = 0u64;
    while steps < spec.max_steps {
        if !cluster.step() {
            break;
        }
        steps += 1;
        if let Err(v) = checker.check_cluster(&cluster) {
            return RunOutcome {
                steps,
                violation: Some((steps, v)),
            };
        }
    }
    RunOutcome {
        steps,
        violation: None,
    }
}

/// Binary-searches the smallest step budget in `[1, violating_step]`
/// that still reproduces a violation of `spec` (determinism makes the
/// predicate monotone in the budget). Returns that minimal budget.
pub fn shrink(spec: &RunSpec, violating_step: u64) -> u64 {
    let (mut lo, mut hi) = (1u64, violating_step.max(1));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let probe = RunSpec {
            max_steps: mid,
            ..*spec
        };
        if run_spec(&probe).violation.is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

/// The cross-product a sweep covers.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Group size.
    pub n: usize,
    /// Strategies to run.
    pub strategies: Vec<StrategyKind>,
    /// Schedules to run.
    pub schedules: Vec<Schedule>,
    /// Seeds to run.
    pub seeds: Vec<u64>,
    /// Per-run step budget.
    pub max_steps: u64,
    /// Whether to shrink each violation to its minimal budget.
    pub shrink: bool,
}

/// One violating run, ready to report.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// The run that failed.
    pub spec: RunSpec,
    /// The step at which the first predicate broke.
    pub step: u64,
    /// Minimal reproducing budget, when shrinking was requested.
    pub shrunk_steps: Option<u64>,
    /// The violated predicate.
    pub violation: Violation,
    /// The single-line replay command (already at the minimal budget if
    /// shrinking ran).
    pub replay: String,
}

/// Aggregate result of a sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Runs executed.
    pub runs: u64,
    /// Scheduler steps executed across all runs.
    pub total_steps: u64,
    /// Every violating run, in sweep order.
    pub violations: Vec<ViolationReport>,
}

/// Sweeps the full cross-product, collecting every violation.
pub fn sweep(cfg: &SweepConfig) -> SweepReport {
    let mut report = SweepReport::default();
    for strategy in &cfg.strategies {
        for schedule in &cfg.schedules {
            for seed in &cfg.seeds {
                let spec = RunSpec {
                    n: cfg.n,
                    strategy: *strategy,
                    schedule: *schedule,
                    seed: *seed,
                    max_steps: cfg.max_steps,
                };
                let outcome = run_spec(&spec);
                report.runs += 1;
                report.total_steps += outcome.steps;
                if let Some((step, violation)) = outcome.violation {
                    let shrunk_steps = cfg.shrink.then(|| shrink(&spec, step));
                    let replay_spec = RunSpec {
                        max_steps: shrunk_steps.unwrap_or(step),
                        ..spec
                    };
                    report.violations.push(ViolationReport {
                        spec,
                        step,
                        shrunk_steps,
                        violation,
                        replay: replay_spec.replay_command(),
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(strategy: StrategyKind, seed: u64) -> RunSpec {
        RunSpec {
            n: 4,
            strategy,
            schedule: Schedule::Random,
            seed,
            max_steps: 200_000,
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let s = spec(StrategyKind::Equivocate, 3);
        let a = run_spec(&s);
        let b = run_spec(&s);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.violation.is_some(), b.violation.is_some());
    }

    #[test]
    fn replay_command_carries_the_full_spec() {
        let s = spec(StrategyKind::ConflictingVectors, 17);
        let cmd = s.replay_command();
        for needle in [
            "--n 4",
            "--strategies conflicting-vectors",
            "--schedules random",
            "--seed-base 17",
            "--max-steps 200000",
        ] {
            assert!(cmd.contains(needle), "{cmd:?} missing {needle:?}");
        }
    }

    #[test]
    fn workload_terminates_without_a_strategy_interfering() {
        // Sanity: the standard workload drains well within the budget on
        // an honest-but-silent adversary slot (random mutation can drop
        // everything, so use the weakest strategy here).
        let out = run_spec(&spec(StrategyKind::Silence, 1));
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(
            out.steps > 100,
            "workload actually ran ({} steps)",
            out.steps
        );
        assert!(out.steps < 200_000, "drained before the budget");
    }

    /// Runs the standard workload (attacker slot = 3, optionally with a
    /// strategy installed there) and returns per-peer suspicion totals
    /// summed over the three correct processes.
    fn suspicion_totals(strategy: Option<StrategyKind>, seed: u64) -> [u64; 4] {
        let attacker = 3;
        let mut cluster = Cluster::new(4, seed);
        cluster.set_schedule(Schedule::Random);
        if let Some(s) = strategy {
            cluster.set_strategy(attacker, s.build(seed ^ 0xAD5E_CA11));
        }
        let mut checker = InvariantChecker::new(4);
        checker.mark_corrupt(attacker);
        seed_workload(&mut cluster, &mut checker, attacker);
        let mut steps = 0u64;
        while steps < 200_000 && cluster.step() {
            steps += 1;
        }
        let mut totals = [0u64; 4];
        for p in 0..4 {
            if p == attacker {
                continue;
            }
            for s in cluster.metrics(p).suspicions() {
                totals[s.peer as usize] += s.total();
            }
        }
        totals
    }

    #[test]
    fn failure_free_runs_report_zero_suspicions() {
        // The conformance counters must be silent when nobody misbehaves
        // — an honest-but-empty attacker slot produces no evidence.
        assert_eq!(suspicion_totals(None, 11), [0; 4]);
    }

    #[test]
    fn corrupt_strategies_make_the_attacker_the_top_suspect() {
        // Split attribution is evidence, not proof: an equivocating
        // sender or a lying relay drags honest conflict endpoints into
        // the suspect set. The guarantee is therefore ranked, not exact —
        // the corrupt peer accumulates strictly more suspicions across
        // the correct processes than any honest peer.
        //
        // Silence is exempt: a silent process sends nothing invalid, so
        // there is no conformance evidence to count. Its signature is
        // absence — stalled instances — which the health watchdog and
        // cluster trace correlation surface instead.
        for strategy in [
            StrategyKind::Equivocate,
            StrategyKind::BiasedCoin,
            StrategyKind::ConflictingVectors,
            StrategyKind::StaleReplay,
            StrategyKind::RandomMutation,
        ] {
            let totals = suspicion_totals(Some(strategy), 5);
            assert!(
                totals[3] > 0,
                "{strategy:?}: attacker never suspected: {totals:?}"
            );
            for peer in 0..3 {
                assert!(
                    totals[3] > totals[peer],
                    "{strategy:?}: attacker not the top suspect: {totals:?}"
                );
            }
        }
    }
}
