//! Protocol-aware Byzantine adversary framework.
//!
//! The paper's central claim is safety under *any* behaviour from up to
//! `f = ⌊(n−1)/3⌋` corrupt processes. The wire-level garbage injector in
//! [`crate::testing::Cluster::corrupt`] only exercises frames that honest
//! validation trivially rejects; the strategies here attack *inside* the
//! protocol encodings — equivocation, selective silence, biased coin
//! voting, conflicting `VECT` vectors, stale-instance replay — i.e. the
//! attacks the paper's validation rules (§2.4–§2.6) are designed to
//! neutralize.
//!
//! A [`Strategy`] intercepts every outbound frame of a corrupt process at
//! the [`crate::stack::Stack`] boundary, once per destination (so a single
//! broadcast can say different things to different peers — the essence of
//! equivocation). Frames are presented *decoded*, as a typed
//! [`ProtocolMsg`] mirroring the control-block chain, so strategies can
//! lie at exactly the layer they target and re-encode structurally valid
//! messages that only semantic validation can reject.
//!
//! The [`explorer`] module sweeps strategies across schedules and seeds,
//! checking the paper's safety predicates ([`crate::invariants`]) after
//! every delivery, and renders deterministic replay commands for any
//! violation it finds.

pub mod explorer;
mod strategies;

pub use strategies::{
    BiasedCoin, ConflictingVectors, Equivocate, RandomMutation, SelectiveSilence, StaleReplay,
};

use crate::ab::AbMessage;
use crate::bc::{BcBody, BcMessage};
use crate::codec::{Reader, WireMessage, Writer};
use crate::eb::EbMessage;
use crate::mvc::{MvcMessage, VectBody};
use crate::rb::RbMessage;
use crate::stack::InstanceKey;
use crate::vc::VcMessage;
use crate::ProcessId;
use bytes::Bytes;

/// A decoded protocol message, typed by the instance it belongs to — the
/// adversary's view of one outbound frame along the control-block chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolMsg {
    /// Reliable broadcast traffic.
    Rb(RbMessage),
    /// Echo broadcast traffic.
    Eb(EbMessage),
    /// Binary consensus traffic.
    Bc(BcMessage),
    /// Multi-valued consensus traffic.
    Mvc(MvcMessage),
    /// Vector consensus traffic.
    Vc(VcMessage),
    /// Atomic broadcast traffic.
    Ab(AbMessage),
}

impl ProtocolMsg {
    fn encode_inner(&self, w: &mut Writer) {
        match self {
            ProtocolMsg::Rb(m) => m.encode(w),
            ProtocolMsg::Eb(m) => m.encode(w),
            ProtocolMsg::Bc(m) => m.encode(w),
            ProtocolMsg::Mvc(m) => m.encode(w),
            ProtocolMsg::Vc(m) => m.encode(w),
            ProtocolMsg::Ab(m) => m.encode(w),
        }
    }

    /// Re-encodes this message into a full wire frame for `key`.
    pub fn frame(&self, key: InstanceKey) -> Bytes {
        let mut w = Writer::new();
        key.encode(&mut w);
        self.encode_inner(&mut w);
        w.freeze()
    }
}

/// Decodes a stack wire frame into its instance key and typed message.
/// Returns `None` on any malformed input (an honest stack never produces
/// one; adversarial re-injections may).
pub fn decode_frame(frame: &[u8]) -> Option<(InstanceKey, ProtocolMsg)> {
    let mut r = Reader::new(frame);
    let key = InstanceKey::decode(&mut r).ok()?;
    let inner = r.raw(r.remaining(), "frame.body").ok()?;
    let msg = match key {
        InstanceKey::Rb { .. } => ProtocolMsg::Rb(RbMessage::from_bytes(inner).ok()?),
        InstanceKey::Eb { .. } => ProtocolMsg::Eb(EbMessage::from_bytes(inner).ok()?),
        InstanceKey::Bc { .. } => ProtocolMsg::Bc(BcMessage::from_bytes(inner).ok()?),
        InstanceKey::Mvc { .. } => ProtocolMsg::Mvc(MvcMessage::from_bytes(inner).ok()?),
        InstanceKey::Vc { .. } => ProtocolMsg::Vc(VcMessage::from_bytes(inner).ok()?),
        InstanceKey::Ab { .. } => ProtocolMsg::Ab(AbMessage::from_bytes(inner).ok()?),
        // State-transfer frames are point-to-point and carry their own
        // integrity (Merkle proofs + f+1 cross-checks); the adversary
        // framework does not reinterpret them.
        InstanceKey::Xfer => return None,
    };
    Some((key, msg))
}

/// What the innermost reliable/echo-broadcast payload of a message
/// *means* — so strategies can mutate it while keeping the encoding
/// structurally valid (semantic lies, not garbage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// Opaque application bytes (RB/EB payloads, VC proposals, AB
    /// message payloads).
    Raw,
    /// An encoded [`crate::mvc::MvcValue`] (MVC `INIT` payloads).
    MvcValue,
    /// An encoded [`crate::mvc::VectPayload`] (MVC `VECT` payloads).
    VectPayload,
    /// A one-byte encoded binary consensus step value.
    BcVal,
    /// An internal encoding this framework does not re-interpret (AB
    /// agreement vectors).
    Opaque,
}

/// Which reliable-broadcast stage a message ultimately carries, wherever
/// it sits in the chain. `None` for messages with no RB component (EB
/// `VECT`/`MAT` legs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RbStage {
    /// An `INIT` transmission.
    Init,
    /// An `ECHO`.
    Echo,
    /// A `READY` (the delivery-driving stage — prime silence target).
    Ready,
}

fn rb_stage_of(m: &RbMessage) -> RbStage {
    match m {
        RbMessage::Init(_) => RbStage::Init,
        RbMessage::Echo(_) => RbStage::Echo,
        RbMessage::Ready(_) => RbStage::Ready,
    }
}

/// The innermost RB stage of `msg`, chasing the control-block chain.
pub fn innermost_rb_stage(msg: &ProtocolMsg) -> Option<RbStage> {
    fn of_bc(m: &BcMessage) -> Option<RbStage> {
        match &m.body {
            BcBody::Rbc(rb) => Some(rb_stage_of(rb)),
            BcBody::Plain(_) => None,
        }
    }
    fn of_mvc(m: &MvcMessage) -> Option<RbStage> {
        match m {
            MvcMessage::Init { inner, .. } => Some(rb_stage_of(inner)),
            MvcMessage::Vect { inner, .. } => match inner {
                VectBody::Echo(_) => None,
                VectBody::Reliable(rb) => Some(rb_stage_of(rb)),
            },
            MvcMessage::Bin(bc) => of_bc(bc),
        }
    }
    match msg {
        ProtocolMsg::Rb(m) => Some(rb_stage_of(m)),
        ProtocolMsg::Eb(_) => None,
        ProtocolMsg::Bc(m) => of_bc(m),
        ProtocolMsg::Mvc(m) => of_mvc(m),
        ProtocolMsg::Vc(m) => match m {
            VcMessage::Prop { inner, .. } => Some(rb_stage_of(inner)),
            VcMessage::Round { inner, .. } => of_mvc(inner),
        },
        ProtocolMsg::Ab(m) => match m {
            AbMessage::Msg { inner, .. } | AbMessage::Vect { inner, .. } => {
                Some(rb_stage_of(inner))
            }
            AbMessage::Agree { inner, .. } => of_mvc(inner),
        },
    }
}

/// Whether `msg` is (or carries) an echo-broadcast `MAT` column — the EB
/// delivery-driving leg, the silence strategy's other target.
pub fn is_eb_mat(msg: &ProtocolMsg) -> bool {
    fn of_mvc(m: &MvcMessage) -> bool {
        matches!(
            m,
            MvcMessage::Vect {
                inner: VectBody::Echo(EbMessage::Mat(_)),
                ..
            }
        )
    }
    match msg {
        ProtocolMsg::Eb(EbMessage::Mat(_)) => true,
        ProtocolMsg::Mvc(m) => of_mvc(m),
        ProtocolMsg::Vc(VcMessage::Round { inner, .. }) => of_mvc(inner),
        ProtocolMsg::Ab(AbMessage::Agree { inner, .. }) => of_mvc(inner),
        _ => false,
    }
}

/// Grants a mutator access to the innermost broadcast payload of `msg`,
/// with its [`PayloadKind`]. Returns `false` when the message has no
/// mutable payload (EB `VECT`/`MAT`, plain-fanout BC values).
pub fn with_innermost_payload(
    msg: &mut ProtocolMsg,
    f: &mut dyn FnMut(PayloadKind, &mut Bytes),
) -> bool {
    fn of_rb(m: &mut RbMessage, kind: PayloadKind, f: &mut dyn FnMut(PayloadKind, &mut Bytes)) {
        match m {
            RbMessage::Init(p) | RbMessage::Echo(p) | RbMessage::Ready(p) => f(kind, p),
        }
    }
    fn of_bc(m: &mut BcMessage, f: &mut dyn FnMut(PayloadKind, &mut Bytes)) -> bool {
        match &mut m.body {
            BcBody::Rbc(rb) => {
                of_rb(rb, PayloadKind::BcVal, f);
                true
            }
            BcBody::Plain(_) => false,
        }
    }
    fn of_mvc(m: &mut MvcMessage, f: &mut dyn FnMut(PayloadKind, &mut Bytes)) -> bool {
        match m {
            MvcMessage::Init { inner, .. } => {
                of_rb(inner, PayloadKind::MvcValue, f);
                true
            }
            MvcMessage::Vect { inner, .. } => match inner {
                VectBody::Echo(EbMessage::Init(p)) => {
                    f(PayloadKind::VectPayload, p);
                    true
                }
                VectBody::Echo(_) => false,
                VectBody::Reliable(rb) => {
                    of_rb(rb, PayloadKind::VectPayload, f);
                    true
                }
            },
            MvcMessage::Bin(bc) => of_bc(bc, f),
        }
    }
    match msg {
        ProtocolMsg::Rb(m) => {
            of_rb(m, PayloadKind::Raw, f);
            true
        }
        ProtocolMsg::Eb(EbMessage::Init(p)) => {
            f(PayloadKind::Raw, p);
            true
        }
        ProtocolMsg::Eb(_) => false,
        ProtocolMsg::Bc(m) => of_bc(m, f),
        ProtocolMsg::Mvc(m) => of_mvc(m, f),
        ProtocolMsg::Vc(m) => match m {
            VcMessage::Prop { inner, .. } => {
                of_rb(inner, PayloadKind::Raw, f);
                true
            }
            VcMessage::Round { inner, .. } => of_mvc(inner, f),
        },
        ProtocolMsg::Ab(m) => match m {
            AbMessage::Msg { inner, .. } => {
                of_rb(inner, PayloadKind::Raw, f);
                true
            }
            AbMessage::Vect { inner, .. } => {
                of_rb(inner, PayloadKind::Opaque, f);
                true
            }
            AbMessage::Agree { inner, .. } => of_mvc(inner, f),
        },
    }
}

/// Context handed to a strategy for one (message, destination) pair.
#[derive(Debug, Clone, Copy)]
pub struct SendCtx {
    /// The corrupt process the strategy speaks for.
    pub me: ProcessId,
    /// The peer this copy of the message is headed to.
    pub to: ProcessId,
    /// Group size.
    pub n: usize,
}

/// A Byzantine strategy: rewrites each outbound protocol message of a
/// corrupt process, per destination.
///
/// The framework calls [`Strategy::rewrite`] once for every (message,
/// destination) pair the honest stack wanted to send — a broadcast to `n`
/// peers yields `n` calls with the same `msg` — and transmits exactly the
/// frames returned: an empty vector withholds the message, multiple
/// entries inject extras. Strategies must be deterministic functions of
/// their construction seed and call sequence (the conformance harness
/// replays runs bit-for-bit).
pub trait Strategy: std::fmt::Debug + Send {
    /// Stable strategy name (used in replay commands).
    fn name(&self) -> &'static str;

    /// Rewrites one outbound message for one destination; returns the
    /// wire frames that actually travel.
    fn rewrite(&mut self, ctx: &SendCtx, key: InstanceKey, msg: ProtocolMsg) -> Vec<Bytes>;
}

/// The built-in strategy library, as a parseable identifier — the
/// `strategy` axis of the conformance matrix and of replay commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StrategyKind {
    /// Different payloads to different halves of the group.
    Equivocate,
    /// Withhold `READY`/`MAT` (delivery-driving) legs from chosen peers.
    Silence,
    /// Force every binary consensus step value to 0.
    BiasedCoin,
    /// Per-peer conflicting MVC `VECT` values with fabricated
    /// justification vectors.
    ConflictingVectors,
    /// Replay frames from stale instances and finished rounds.
    StaleReplay,
    /// Seeded random frame mutation (drop/duplicate/bit-flip/garbage).
    RandomMutation,
}

impl StrategyKind {
    /// Every built-in strategy, in matrix order.
    pub const ALL: [StrategyKind; 6] = [
        StrategyKind::Equivocate,
        StrategyKind::Silence,
        StrategyKind::BiasedCoin,
        StrategyKind::ConflictingVectors,
        StrategyKind::StaleReplay,
        StrategyKind::RandomMutation,
    ];

    /// Builds the strategy, seeded for deterministic replay.
    pub fn build(self, seed: u64) -> Box<dyn Strategy> {
        match self {
            StrategyKind::Equivocate => Box::new(Equivocate::new()),
            StrategyKind::Silence => Box::new(SelectiveSilence::new(seed)),
            StrategyKind::BiasedCoin => Box::new(BiasedCoin::new()),
            StrategyKind::ConflictingVectors => Box::new(ConflictingVectors::new()),
            StrategyKind::StaleReplay => Box::new(StaleReplay::new(seed)),
            StrategyKind::RandomMutation => Box::new(RandomMutation::new(seed)),
        }
    }
}

impl core::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            StrategyKind::Equivocate => "equivocate",
            StrategyKind::Silence => "silence",
            StrategyKind::BiasedCoin => "biased-coin",
            StrategyKind::ConflictingVectors => "conflicting-vectors",
            StrategyKind::StaleReplay => "stale-replay",
            StrategyKind::RandomMutation => "random-mutation",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "equivocate" => Ok(StrategyKind::Equivocate),
            "silence" => Ok(StrategyKind::Silence),
            "biased-coin" => Ok(StrategyKind::BiasedCoin),
            "conflicting-vectors" => Ok(StrategyKind::ConflictingVectors),
            "stale-replay" => Ok(StrategyKind::StaleReplay),
            "random-mutation" => Ok(StrategyKind::RandomMutation),
            other => Err(format!(
                "unknown strategy {other:?} (expected one of: equivocate, silence, biased-coin, \
                 conflicting-vectors, stale-replay, random-mutation)"
            )),
        }
    }
}

/// A seeded byte-level frame corrupter, usable on *any* framed byte
/// string — protocol frames here, and the service tier's client replies
/// in the conformance tests. The arms mirror the cluster's wire-level
/// `corrupt()`: drop, duplicate, bit-flip, truncate, or replace with
/// garbage, all replayable from the seed.
///
/// [`RandomMutation`] is this mutator applied to protocol frames; the
/// service tests apply it to REPLY frames to model a replica that lies to
/// its clients rather than to its peers.
#[derive(Debug, Clone)]
pub struct FrameMutator {
    rng: StrategyRng,
}

impl FrameMutator {
    /// Creates a mutator with its seed.
    pub fn new(seed: u64) -> Self {
        FrameMutator {
            rng: StrategyRng::new(seed ^ 0xF1E1D),
        }
    }

    /// Rewrites one frame into zero, one or two frames at random.
    pub fn mutate(&mut self, frame: Bytes) -> Vec<Bytes> {
        match self.rng.next() % 6 {
            0 => Vec::new(),                 // drop
            1 => vec![frame.clone(), frame], // duplicate
            2 => vec![self.flip_bit(frame)],
            3 => {
                // Truncate.
                let len = (self.rng.next() as usize) % (frame.len() + 1);
                vec![frame.slice(0..len)]
            }
            4 => vec![self.garbage()],
            _ => vec![frame], // pass through
        }
    }

    /// Flips one seeded bit of `frame` — corruption that always keeps a
    /// same-length, decodable-looking frame (the hardest lie to filter
    /// structurally; only MACs or votes can reject it).
    pub fn flip_bit(&mut self, frame: Bytes) -> Bytes {
        let mut v = frame.to_vec();
        if !v.is_empty() {
            let pos = (self.rng.next() as usize) % v.len();
            let bit = (self.rng.next() % 8) as u8;
            v[pos] ^= 1 << bit;
        }
        Bytes::from(v)
    }

    /// A short frame of seeded garbage.
    pub fn garbage(&mut self) -> Bytes {
        let len = 1 + (self.rng.next() as usize) % 24;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.rng.next() as u8);
        }
        Bytes::from(v)
    }
}

/// Small seeded xorshift used by strategies (same generator family as the
/// test cluster's scheduler; strategies must be replayable).
#[derive(Debug, Clone)]
pub(crate) struct StrategyRng(u64);

impl StrategyRng {
    pub(crate) fn new(seed: u64) -> Self {
        StrategyRng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_through_decode() {
        let key = InstanceKey::Rb { sender: 2, seq: 7 };
        let msg = ProtocolMsg::Rb(RbMessage::Echo(Bytes::from_static(b"x")));
        let frame = msg.frame(key);
        let (k2, m2) = decode_frame(&frame).expect("decodes");
        assert_eq!(k2, key);
        assert_eq!(m2, msg);
    }

    #[test]
    fn decode_frame_rejects_garbage() {
        assert!(decode_frame(&[0xff, 0x01, 0x02]).is_none());
        assert!(decode_frame(&[]).is_none());
    }

    #[test]
    fn strategy_kind_parses_all_names() {
        for kind in StrategyKind::ALL {
            assert_eq!(kind.to_string().parse::<StrategyKind>().unwrap(), kind);
        }
        assert!("no-such-strategy".parse::<StrategyKind>().is_err());
    }

    #[test]
    fn innermost_stage_chases_the_chain() {
        let msg = ProtocolMsg::Ab(AbMessage::Msg {
            id: crate::ab::MsgId { sender: 0, rbid: 0 },
            inner: RbMessage::Ready(Bytes::from_static(b"p")),
        });
        assert_eq!(innermost_rb_stage(&msg), Some(RbStage::Ready));
        let eb = ProtocolMsg::Eb(EbMessage::Mat(vec![None]));
        assert_eq!(innermost_rb_stage(&eb), None);
        assert!(is_eb_mat(&eb));
    }

    #[test]
    fn payload_access_reaches_nested_layers() {
        let mut msg = ProtocolMsg::Vc(VcMessage::Prop {
            origin: 1,
            inner: RbMessage::Init(Bytes::from_static(b"v")),
        });
        let mut seen = None;
        assert!(with_innermost_payload(&mut msg, &mut |kind, bytes| {
            seen = Some((kind, bytes.clone()));
            *bytes = Bytes::from_static(b"w");
        }));
        assert_eq!(seen, Some((PayloadKind::Raw, Bytes::from_static(b"v"))));
        match msg {
            ProtocolMsg::Vc(VcMessage::Prop { inner, .. }) => {
                assert_eq!(inner.payload().as_ref(), b"w");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
