//! The built-in Byzantine strategy library.
//!
//! Each strategy targets a specific validation rule of the paper (see
//! DESIGN.md for the full mapping). All are deterministic functions of
//! their construction seed and the sequence of `rewrite` calls, so any
//! run is replayable bit-for-bit from `(strategy, schedule, seed)`.

use super::{
    innermost_rb_stage, is_eb_mat, with_innermost_payload, FrameMutator, PayloadKind, ProtocolMsg,
    RbStage, SendCtx, Strategy, StrategyRng,
};
use crate::bc::{decode_val, encode_val};
use crate::codec::WireMessage;
use crate::mvc::{MvcValue, VectPayload};
use crate::stack::InstanceKey;
use bytes::Bytes;

/// Rewrites `bytes` into a *different but structurally valid* payload of
/// the same kind, salted by `salt` (so distinct salts yield distinct
/// lies). This is the semantic mutation primitive under equivocation:
/// receivers can only reject the result through the paper's validation
/// rules, never through decode errors.
fn mutate_payload(kind: PayloadKind, bytes: &mut Bytes, salt: u8) {
    match kind {
        PayloadKind::Raw | PayloadKind::Opaque => {
            let mut v: Vec<u8> = bytes.to_vec();
            if v.is_empty() {
                v.push(salt);
            } else {
                for b in &mut v {
                    *b ^= salt | 1;
                }
            }
            *bytes = Bytes::from(v);
        }
        PayloadKind::BcVal => {
            // One-byte encoded step value: flip 0 ↔ 1 and turn ⊥ into 0,
            // keeping the byte in the decoder's accepted range.
            let flipped = match bytes.first().map(|b| decode_val(*b)) {
                Some(Ok(Some(v))) => encode_val(Some(!v)),
                _ => encode_val(Some(false)),
            };
            *bytes = Bytes::from(vec![flipped]);
        }
        PayloadKind::MvcValue => {
            let mut w = crate::codec::Writer::new();
            crate::mvc::encode_value(&mut w, &Some(Bytes::from(vec![0xE0, salt])));
            *bytes = w.freeze();
        }
        PayloadKind::VectPayload => {
            // Keep the justification shape but lie about the value; if the
            // original does not decode, fabricate one from scratch.
            let mut p = VectPayload::from_bytes(bytes).unwrap_or_else(|_| VectPayload {
                value: None,
                justification: Vec::new(),
            });
            let lie: MvcValue = Some(Bytes::from(vec![0xE1, salt]));
            for j in &mut p.justification {
                *j = lie.clone();
            }
            p.value = lie;
            *bytes = p.to_bytes();
        }
    }
}

/// Equivocation (targets: RB one-value-per-sender, EB vector agreement,
/// BC step tallies, MVC `VECT` validation): the original payload goes to
/// the low half of the group and a mutated-but-well-formed variant to the
/// high half, for *every* broadcast payload along the chain.
#[derive(Debug)]
pub struct Equivocate {
    _private: (),
}

impl Equivocate {
    /// Creates the strategy (stateless; equivocation is positional).
    pub fn new() -> Self {
        Equivocate { _private: () }
    }
}

impl Default for Equivocate {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for Equivocate {
    fn name(&self) -> &'static str {
        "equivocate"
    }

    fn rewrite(&mut self, ctx: &SendCtx, key: InstanceKey, mut msg: ProtocolMsg) -> Vec<Bytes> {
        if ctx.to >= ctx.n / 2 {
            // Salt by destination so the high half does not even agree
            // among itself — the strongest split.
            let salt = 0x10 | (ctx.to as u8 & 0x0F);
            with_innermost_payload(&mut msg, &mut |kind, bytes| {
                mutate_payload(kind, bytes, salt);
            });
        }
        vec![msg.frame(key)]
    }
}

/// Selective silence (targets: RB/EB liveness margins and the BC step-3
/// threshold): withholds the delivery-driving legs — RB `READY`, EB
/// `MAT`, and all of binary consensus step 3 — from a seeded subset of
/// peers, starving chosen quorums without ever sending an invalid byte.
#[derive(Debug)]
pub struct SelectiveSilence {
    muted_mask: u64,
}

impl SelectiveSilence {
    /// Creates the strategy; `seed` picks which peers are starved.
    pub fn new(seed: u64) -> Self {
        let mut rng = StrategyRng::new(seed ^ 0x51EC);
        // Mute roughly half the group, but never everyone (an entirely
        // mute process is just a crash, which the fault matrix covers).
        let mut muted_mask = rng.next();
        if muted_mask.count_ones() > 32 {
            muted_mask = !muted_mask;
        }
        SelectiveSilence { muted_mask }
    }

    fn muted(&self, to: crate::ProcessId) -> bool {
        self.muted_mask >> (to % 64) & 1 == 1
    }
}

impl Strategy for SelectiveSilence {
    fn name(&self) -> &'static str {
        "silence"
    }

    fn rewrite(&mut self, ctx: &SendCtx, key: InstanceKey, msg: ProtocolMsg) -> Vec<Bytes> {
        let is_step3 = matches!(
            &msg,
            ProtocolMsg::Bc(m) if m.step == 3
        ) || matches!(
            &msg,
            ProtocolMsg::Mvc(crate::mvc::MvcMessage::Bin(m)) if m.step == 3
        );
        let delivery_leg =
            innermost_rb_stage(&msg) == Some(RbStage::Ready) || is_eb_mat(&msg) || is_step3;
        if delivery_leg && self.muted(ctx.to) {
            return Vec::new();
        }
        vec![msg.frame(key)]
    }
}

/// Biased coin voting (targets: the BC validation rules `step2_valid` /
/// `step3_valid` / `next_round_valid` and coin unpredictability, §4.2):
/// every binary consensus step value the process transmits — its own and
/// the echoes/readies it relays for others — is forced to 0, the paper's
/// "always propose 0" attacker made protocol-aware.
#[derive(Debug)]
pub struct BiasedCoin {
    _private: (),
}

impl BiasedCoin {
    /// Creates the strategy.
    pub fn new() -> Self {
        BiasedCoin { _private: () }
    }
}

impl Default for BiasedCoin {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for BiasedCoin {
    fn name(&self) -> &'static str {
        "biased-coin"
    }

    fn rewrite(&mut self, _ctx: &SendCtx, key: InstanceKey, mut msg: ProtocolMsg) -> Vec<Bytes> {
        use crate::bc::BcBody;
        // Plain-fanout step values carry the Val directly.
        let force_plain = |body: &mut BcBody| {
            if let BcBody::Plain(v) = body {
                *v = Some(false);
            }
        };
        match &mut msg {
            ProtocolMsg::Bc(m) => force_plain(&mut m.body),
            ProtocolMsg::Mvc(crate::mvc::MvcMessage::Bin(m)) => force_plain(&mut m.body),
            _ => {}
        }
        with_innermost_payload(&mut msg, &mut |kind, bytes| {
            if kind == PayloadKind::BcVal {
                *bytes = Bytes::from(vec![encode_val(Some(false))]);
            }
        });
        vec![msg.frame(key)]
    }
}

/// Conflicting MVC vectors (targets: the `VECT` justification check —
/// a value is only acceptable if the claimed `INIT` vector both matches
/// the receiver's own deliveries in `n−2f` places and actually justifies
/// the value): sends each peer a *different* fabricated value backed by a
/// fully populated, internally consistent justification vector, and
/// splits its `INIT` the same way so every layer of the conflicting-views
/// attack is exercised (the `INIT` leg rides reliable broadcast, where
/// the echo exchange exposes the split to every correct process).
#[derive(Debug)]
pub struct ConflictingVectors {
    _private: (),
}

impl ConflictingVectors {
    /// Creates the strategy.
    pub fn new() -> Self {
        ConflictingVectors { _private: () }
    }
}

impl Default for ConflictingVectors {
    fn default() -> Self {
        Self::new()
    }
}

impl Strategy for ConflictingVectors {
    fn name(&self) -> &'static str {
        "conflicting-vectors"
    }

    fn rewrite(&mut self, ctx: &SendCtx, key: InstanceKey, mut msg: ProtocolMsg) -> Vec<Bytes> {
        let fake: MvcValue = Some(Bytes::from(vec![0xCF, ctx.to as u8]));
        with_innermost_payload(&mut msg, &mut |kind, bytes| match kind {
            PayloadKind::VectPayload => {
                let lie = VectPayload {
                    value: fake.clone(),
                    justification: vec![fake.clone(); ctx.n],
                };
                *bytes = lie.to_bytes();
            }
            PayloadKind::MvcValue => {
                let mut w = crate::codec::Writer::new();
                crate::mvc::encode_value(&mut w, &fake);
                *bytes = w.freeze();
            }
            _ => {}
        });
        vec![msg.frame(key)]
    }
}

/// Stale-instance replay (targets: per-instance routing, RB/EB duplicate
/// suppression, and the BC round-window check `MAX_ROUND_AHEAD`): records
/// every frame it sends and periodically re-injects an old one alongside
/// the current message, resurrecting finished instances and past rounds.
#[derive(Debug)]
pub struct StaleReplay {
    rng: StrategyRng,
    history: Vec<Bytes>,
    calls: u64,
}

/// Replay buffer depth; old enough to reach back across instances.
const REPLAY_HISTORY: usize = 256;

impl StaleReplay {
    /// Creates the strategy; `seed` drives which stale frame returns.
    pub fn new(seed: u64) -> Self {
        StaleReplay {
            rng: StrategyRng::new(seed ^ 0x57A1E),
            history: Vec::new(),
            calls: 0,
        }
    }
}

impl Strategy for StaleReplay {
    fn name(&self) -> &'static str {
        "stale-replay"
    }

    fn rewrite(&mut self, _ctx: &SendCtx, key: InstanceKey, msg: ProtocolMsg) -> Vec<Bytes> {
        let frame = msg.frame(key);
        self.calls += 1;
        let mut out = vec![frame.clone()];
        // Every fourth send, resurrect a seeded pick from the history.
        if self.calls.is_multiple_of(4) && !self.history.is_empty() {
            let idx = (self.rng.next() as usize) % self.history.len();
            out.push(self.history[idx].clone());
        }
        if self.history.len() == REPLAY_HISTORY {
            let evict = (self.rng.next() as usize) % REPLAY_HISTORY;
            self.history[evict] = frame;
        } else {
            self.history.push(frame);
        }
        out
    }
}

/// Seeded random mutation (targets: decoder hardening end-to-end): the
/// protocol-level twin of the cluster's wire-level `corrupt()` — drops,
/// duplicates, bit-flips, truncates or replaces frames at random, but
/// *after* per-destination expansion, so even `Target::All` sends differ
/// per peer.
#[derive(Debug)]
pub struct RandomMutation {
    mutator: FrameMutator,
}

impl RandomMutation {
    /// Creates the strategy with its mutation seed.
    pub fn new(seed: u64) -> Self {
        RandomMutation {
            mutator: FrameMutator::new(seed),
        }
    }
}

impl Strategy for RandomMutation {
    fn name(&self) -> &'static str {
        "random-mutation"
    }

    fn rewrite(&mut self, _ctx: &SendCtx, key: InstanceKey, msg: ProtocolMsg) -> Vec<Bytes> {
        self.mutator.mutate(msg.frame(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::decode_frame;
    use crate::rb::RbMessage;

    fn ctx(to: crate::ProcessId) -> SendCtx {
        SendCtx { me: 3, to, n: 4 }
    }

    fn rb_frame(stage: RbStage, payload: &'static [u8]) -> (InstanceKey, ProtocolMsg) {
        let key = InstanceKey::Rb { sender: 3, seq: 1 };
        let m = match stage {
            RbStage::Init => RbMessage::Init(Bytes::from_static(payload)),
            RbStage::Echo => RbMessage::Echo(Bytes::from_static(payload)),
            RbStage::Ready => RbMessage::Ready(Bytes::from_static(payload)),
        };
        (key, ProtocolMsg::Rb(m))
    }

    #[test]
    fn equivocate_splits_the_group() {
        let mut s = Equivocate::new();
        let (key, msg) = rb_frame(RbStage::Init, b"truth");
        let low = s.rewrite(&ctx(0), key, msg.clone());
        let high = s.rewrite(&ctx(3), key, msg.clone());
        assert_eq!(low, vec![msg.frame(key)], "low half sees the truth");
        assert_ne!(high[0], low[0], "high half sees a lie");
        // The lie still decodes: semantic, not structural, corruption.
        assert!(decode_frame(&high[0]).is_some());
    }

    #[test]
    fn silence_withholds_ready_only_from_muted_peers() {
        let mut s = SelectiveSilence::new(7);
        let muted: Vec<bool> = (0..4).map(|p| s.muted(p)).collect();
        assert!(muted.iter().any(|m| *m), "seed 7 mutes someone");
        let (key, ready) = rb_frame(RbStage::Ready, b"p");
        let (_, init) = rb_frame(RbStage::Init, b"p");
        for (to, muted) in muted.iter().enumerate() {
            let out = s.rewrite(&ctx(to), key, ready.clone());
            assert_eq!(out.is_empty(), *muted, "peer {to}");
            // Non-delivery legs always pass.
            assert_eq!(s.rewrite(&ctx(to), key, init.clone()).len(), 1);
        }
    }

    #[test]
    fn biased_coin_forces_step_values_to_zero() {
        use crate::bc::{BcBody, BcMessage};
        let mut s = BiasedCoin::new();
        let key = InstanceKey::Bc { tag: 9 };
        let msg = ProtocolMsg::Bc(BcMessage {
            round: 0,
            step: 1,
            origin: 3,
            body: BcBody::Rbc(RbMessage::Init(Bytes::from(vec![encode_val(Some(true))]))),
        });
        let out = s.rewrite(&ctx(1), key, msg);
        let (_, rewritten) = decode_frame(&out[0]).unwrap();
        match rewritten {
            ProtocolMsg::Bc(m) => match m.body {
                BcBody::Rbc(rb) => {
                    assert_eq!(rb.payload().as_ref(), &[encode_val(Some(false))]);
                }
                other => panic!("unexpected body {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conflicting_vectors_forges_per_peer_justifications() {
        use crate::mvc::{MvcMessage, VectBody};
        let honest = VectPayload {
            value: Some(Bytes::from_static(b"v")),
            justification: vec![Some(Bytes::from_static(b"v")); 4],
        };
        let key = InstanceKey::Mvc { tag: 2 };
        let msg = ProtocolMsg::Mvc(MvcMessage::Vect {
            origin: 3,
            inner: VectBody::Reliable(RbMessage::Init(honest.to_bytes())),
        });
        let mut s = ConflictingVectors::new();
        let a = s.rewrite(&ctx(0), key, msg.clone());
        let b = s.rewrite(&ctx(1), key, msg);
        assert_ne!(a[0], b[0], "each peer hears a different vector");
        for out in [a, b] {
            let (_, m) = decode_frame(&out[0]).unwrap();
            match m {
                ProtocolMsg::Mvc(MvcMessage::Vect {
                    inner: VectBody::Reliable(rb),
                    ..
                }) => {
                    let p = VectPayload::from_bytes(rb.payload()).unwrap();
                    assert_eq!(p.justification.len(), 4);
                    assert!(p.value.is_some());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn stale_replay_reinjects_history() {
        let mut s = StaleReplay::new(11);
        let (key, msg) = rb_frame(RbStage::Init, b"old");
        let mut injected = 0;
        for _ in 0..16 {
            let out = s.rewrite(&ctx(0), key, msg.clone());
            injected += out.len().saturating_sub(1);
        }
        assert!(injected > 0, "replays old frames");
    }

    #[test]
    fn random_mutation_is_deterministic_per_seed() {
        let (key, msg) = rb_frame(RbStage::Echo, b"payload");
        let run = |seed| {
            let mut s = RandomMutation::new(seed);
            (0..32)
                .flat_map(|_| s.rewrite(&ctx(1), key, msg.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed, same frames");
        assert_ne!(run(42), run(43), "different seed, different frames");
    }
}
