//! Atomic broadcast (paper §2.7, after Correia et al.).
//!
//! Reliable broadcast plus *total order*: every correct process delivers
//! the same messages in the same order. The protocol splits into two
//! tasks:
//!
//! 1. **Broadcasting** — to a-broadcast `m`, a process reliably broadcasts
//!    `(AB_MSG, i, rbid, m)`; the pair `(i, rbid)` uniquely identifies the
//!    message system-wide (identifiers, not hashes: one of the RITAS
//!    optimizations);
//! 2. **Agreement** — in rounds: each process reliably broadcasts
//!    `(AB_VECT, i, r, V_i)` where `V_i` lists the identifiers it has
//!    received but not yet a-delivered; after `n − f` such vectors it
//!    builds `W_i` = identifiers appearing in `≥ f + 1` of them and
//!    proposes `W_i` to a *multi-valued consensus*; a non-⊥ decision `W'`
//!    is a-delivered deterministically (sorted by identifier) once all the
//!    corresponding payloads have arrived — guaranteed, because an
//!    identifier with `f + 1` supporters was reliably broadcast and
//!    reliable broadcast is total.
//!
//! The "relative cost of agreement" result (paper Figure 7) falls out of
//! this structure: one agreement can order arbitrarily many `AB_MSG`s, so
//! the agreement overhead per message vanishes as the load grows — in the
//! paper's experiments an entire 1000-message burst was delivered with
//! only two agreements (2.4% overhead).
//!
//! # Batching and pipelining (Alea-style extension)
//!
//! On top of the paper's protocol, this implementation decouples payload
//! dissemination from per-payload broadcast instances: a-broadcast
//! payloads accumulate in a broadcast-side queue and are disseminated as
//! *batches* — one reliable broadcast (playing Alea's VCBC role) carries
//! many commands, and the agreement rounds order batch identifiers
//! instead of individual payloads. The wire format is unchanged: the
//! identifier inside `AB_MSG` now names a batch (`rbid` = sender-local
//! batch sequence number), and the batch payload carries the commands'
//! contiguous rbid range. A batch is flushed when the queue reaches
//! [`BatchPolicy::max_batch`] commands, when the oldest queued command
//! has waited [`BatchPolicy::max_delay_ns`] (driver clock, see
//! [`AtomicBroadcast::set_now`]), or immediately while no own batch is in
//! flight — so liveness never depends on the clock advancing. At most
//! [`BatchPolicy::window`] own batches are concurrently in flight, which
//! pipelines dissemination of batch `k + 1` under agreement on batch `k`.
//! [`BatchPolicy::immediate`] turns the extension off and recovers the
//! paper's per-message protocol exactly (the simulator uses it to
//! reproduce Figures 4–7).

use crate::codec::{Reader, WireError, WireMessage, Writer};
use crate::config::Group;
use crate::mvc::{MultiValuedConsensus, MvcConfig, MvcMessage, MvcValue};
use crate::rb::{RbMessage, ReliableBroadcast};
use crate::step::{FaultKind, Step};
use crate::ProcessId;
use bytes::Bytes;
use ritas_crypto::ProcessKeys;
use ritas_crypto::{Coin, DeterministicCoin};
use ritas_metrics::{Layer, Metrics};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Unique identifier of an atomically broadcast message: `(sender, rbid)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// The broadcasting process.
    pub sender: ProcessId,
    /// The sender-local sequence number.
    pub rbid: u64,
}

impl MsgId {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.sender as u32).u64(self.rbid);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(MsgId {
            sender: r.u32("ab.id.sender")? as usize,
            rbid: r.u64("ab.id.rbid")?,
        })
    }
}

/// Identifier of a disseminated batch: the same `(sender, seq)` shape —
/// and the same wire encoding — as [`MsgId`], with `rbid` holding the
/// sender-local *batch* sequence number.
pub type BatchId = MsgId;

/// An a-delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbDelivery {
    /// The identifier of the delivered message.
    pub id: MsgId,
    /// The payload.
    pub payload: Bytes,
}

/// Messages of the atomic broadcast protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbMessage {
    /// Reliable broadcast traffic of an `AB_MSG`.
    Msg {
        /// The message identifier the broadcast carries.
        id: MsgId,
        /// The broadcast traffic.
        inner: RbMessage,
    },
    /// Reliable broadcast traffic of an `AB_VECT` for an agreement round.
    Vect {
        /// Whose vector broadcast this belongs to.
        origin: ProcessId,
        /// The agreement round.
        round: u32,
        /// The broadcast traffic.
        inner: RbMessage,
    },
    /// Multi-valued consensus traffic for an agreement round.
    Agree {
        /// The agreement round.
        round: u32,
        /// The inner message.
        inner: MvcMessage,
    },
}

const TAG_MSG: u8 = 1;
const TAG_VECT: u8 = 2;
const TAG_AGREE: u8 = 3;

impl WireMessage for AbMessage {
    fn encode(&self, w: &mut Writer) {
        match self {
            AbMessage::Msg { id, inner } => {
                w.u8(TAG_MSG);
                id.encode(w);
                inner.encode(w);
            }
            AbMessage::Vect {
                origin,
                round,
                inner,
            } => {
                w.u8(TAG_VECT).u32(*origin as u32).u32(*round);
                inner.encode(w);
            }
            AbMessage::Agree { round, inner } => {
                w.u8(TAG_AGREE).u32(*round);
                inner.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("ab.tag")? {
            TAG_MSG => Ok(AbMessage::Msg {
                id: MsgId::decode(r)?,
                inner: RbMessage::decode(r)?,
            }),
            TAG_VECT => Ok(AbMessage::Vect {
                origin: r.u32("ab.origin")? as usize,
                round: r.u32("ab.round")?,
                inner: RbMessage::decode(r)?,
            }),
            TAG_AGREE => Ok(AbMessage::Agree {
                round: r.u32("ab.round")?,
                inner: MvcMessage::decode(r)?,
            }),
            t => Err(WireError::InvalidTag {
                what: "ab.tag",
                tag: t,
            }),
        }
    }
}

/// Decoder bound for identifier vectors.
const MAX_IDS: usize = 1 << 20;

fn encode_ids(ids: &BTreeSet<MsgId>) -> Bytes {
    let mut w = Writer::new();
    w.u32(ids.len() as u32);
    for id in ids {
        id.encode(&mut w);
    }
    w.freeze()
}

fn decode_ids(bytes: &Bytes) -> Result<Vec<MsgId>, WireError> {
    let mut r = Reader::new(bytes);
    let len = r.u32("ab.ids.len")? as usize;
    if len > MAX_IDS {
        return Err(WireError::FieldTooLong {
            what: "ab.ids",
            len,
        });
    }
    let mut ids = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        ids.push(MsgId::decode(&mut r)?);
    }
    r.finish()?;
    Ok(ids)
}

/// Decoder bound for commands per batch (hostile input).
const MAX_BATCH_CMDS: usize = 1 << 16;

/// A decoded dissemination batch: command payloads covering the
/// contiguous rbid range `start_rbid .. start_rbid + payloads.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BatchPayload {
    /// rbid of the first command in the batch.
    start_rbid: u64,
    /// The command payloads, in rbid order.
    payloads: Vec<Bytes>,
    /// The encoded batch as RBC-delivered — kept so recently ordered
    /// batches can be re-served to a rejoining replica whose own RBC
    /// instance can no longer complete (see
    /// [`AtomicBroadcast::retained_batch`]).
    raw: Bytes,
}

fn encode_batch(start_rbid: u64, payloads: &[Bytes]) -> Bytes {
    let mut w = Writer::new();
    w.u64(start_rbid).u32(payloads.len() as u32);
    for p in payloads {
        w.bytes(p);
    }
    w.freeze()
}

fn decode_batch(bytes: &Bytes) -> Result<BatchPayload, WireError> {
    let mut r = Reader::new(bytes);
    let start_rbid = r.u64("ab.batch.start")?;
    let len = r.u32("ab.batch.len")? as usize;
    if len > MAX_BATCH_CMDS {
        return Err(WireError::FieldTooLong {
            what: "ab.batch",
            len,
        });
    }
    if start_rbid.checked_add(len as u64).is_none() {
        return Err(WireError::FieldTooLong {
            what: "ab.batch.start",
            len,
        });
    }
    let mut payloads = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        payloads.push(r.bytes("ab.batch.payload")?);
    }
    r.finish()?;
    Ok(BatchPayload {
        start_rbid,
        payloads,
        raw: bytes.clone(),
    })
}

/// Flush policy of the broadcast-side batch queue (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum commands per disseminated batch (flush on size).
    pub max_batch: usize,
    /// Maximum queueing age of the oldest command, in driver nanoseconds
    /// (flush on age; requires the driver to feed
    /// [`AtomicBroadcast::set_now`]).
    pub max_delay_ns: u64,
    /// Bound on concurrently in-flight own batches (disseminated but not
    /// yet a-delivered). Dissemination of the next batch overlaps
    /// agreement on the previous ones up to this depth.
    pub window: usize,
}

impl BatchPolicy {
    /// The paper's per-message protocol: every command is its own batch
    /// and dissemination is never held back (no queueing, unbounded
    /// window). The simulator uses this to reproduce Figures 4–7
    /// instance-for-instance.
    pub fn immediate() -> Self {
        BatchPolicy {
            max_batch: 1,
            max_delay_ns: 0,
            window: usize::MAX,
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 128,
            max_delay_ns: 2_000_000,
            window: 4,
        }
    }
}

/// Why a batch left the queue (the `ab_flush_*` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushReason {
    /// The queue reached `max_batch` commands.
    Size,
    /// The oldest queued command aged past `max_delay_ns`.
    Age,
    /// No own batch was in flight, so there was nothing to wait for.
    Idle,
}

/// A command waiting in the broadcast-side queue.
#[derive(Debug)]
struct QueuedCmd {
    /// The command's assigned rbid (returned to the caller at
    /// a-broadcast time).
    rbid: u64,
    payload: Bytes,
    /// Driver-clock enqueue time (for the age trigger).
    enqueued_ns: u64,
}

/// Step type of the atomic broadcast: outgoing messages plus a-deliveries
/// in their total order.
pub type AbStep = Step<AbMessage, AbDelivery>;

/// Where a rejoining replica resumes its atomic-broadcast session
/// (built by [`crate::recovery::select_cursor`] from `2f+1` peer hints).
///
/// The cursor is deliberately allowed to be *approximate*: a stale
/// `a_delivered`/`cmd_delivered` makes the session re-deliver messages
/// the group already ordered (dropped as duplicates by the RSM's FIFO
/// holdback), and an over-eager one makes it skip messages (recovered
/// through the post-snapshot log fill). Only `next_rbid`/`next_batch`
/// must never undershoot — reusing an own identifier would fork the
/// sender's id space — which is why cursor selection takes the maximum
/// observed value plus [`crate::recovery::RESUME_ID_SLACK`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbCursor {
    /// Agreement round to resume at.
    pub round: u32,
    /// Per-origin a-delivered *batch* watermark.
    pub a_delivered: Vec<u64>,
    /// Per-origin a-delivered *command* watermark.
    pub cmd_delivered: Vec<u64>,
    /// First own command rbid to assign after resuming.
    pub next_rbid: u64,
    /// First own batch seq to assign after resuming.
    pub next_batch: u64,
}

/// The set of a-delivered identifiers, compacted per origin.
///
/// Correct senders assign sequential `rbid`s, so the common-case
/// representation is one watermark per origin ("everything below `w` is
/// delivered") plus a small sparse set of out-of-order deliveries that
/// have not yet been absorbed into the watermark. Memory stays O(n +
/// out-of-order gap) for arbitrarily long sessions instead of growing
/// with every message ever delivered.
#[derive(Debug, Clone, Default)]
struct DeliveredSet {
    /// Per-origin watermark: every `rbid < watermark[o]` is delivered.
    watermark: Vec<u64>,
    /// Per-origin deliveries at/above the watermark.
    sparse: Vec<BTreeSet<u64>>,
}

impl DeliveredSet {
    fn new(n: usize) -> Self {
        DeliveredSet {
            watermark: vec![0; n],
            sparse: vec![BTreeSet::new(); n],
        }
    }

    /// Rebuilds the set from a per-origin watermark vector (missing or
    /// extra origins are clamped to the group size) — the rejoin path.
    fn from_watermarks(n: usize, w: &[u64]) -> Self {
        DeliveredSet {
            watermark: (0..n).map(|o| w.get(o).copied().unwrap_or(0)).collect(),
            sparse: vec![BTreeSet::new(); n],
        }
    }

    /// The contiguous delivered watermark of `origin`.
    fn watermark_of(&self, origin: ProcessId) -> u64 {
        self.watermark[origin]
    }

    /// Exclusive upper bound of everything ever seen from `origin`
    /// (watermark or one past the highest sparse entry).
    fn max_seen(&self, origin: ProcessId) -> u64 {
        let sparse_end = self.sparse[origin]
            .iter()
            .next_back()
            .map(|r| r + 1)
            .unwrap_or(0);
        self.watermark[origin].max(sparse_end)
    }

    fn contains(&self, id: &MsgId) -> bool {
        id.rbid < self.watermark[id.sender] || self.sparse[id.sender].contains(&id.rbid)
    }

    fn insert(&mut self, id: MsgId) {
        let o = id.sender;
        if id.rbid < self.watermark[o] {
            return;
        }
        self.sparse[o].insert(id.rbid);
        // Absorb a now-contiguous prefix into the watermark.
        while self.sparse[o].remove(&self.watermark[o]) {
            self.watermark[o] += 1;
        }
    }

    /// Sparse (non-compacted) entries across all origins — memory
    /// introspection for tests.
    fn sparse_len(&self) -> usize {
        self.sparse.iter().map(BTreeSet::len).sum()
    }
}

/// How far ahead of the current agreement round messages are accepted.
const MAX_ROUND_AHEAD: u32 = 64;

/// How many recently a-delivered batches keep their encoded payload
/// around for re-serving to rejoiners (bounded memory; a rejoiner that
/// needs older payloads falls back to the snapshot + log fill instead).
const RETAIN_BATCHES: usize = 4096;

/// Configuration for an [`AtomicBroadcast`] instance.
#[derive(Debug, Clone, Copy)]
pub struct AbConfig {
    /// Transports for the agreement (multi-valued consensus) layer.
    pub mvc: MvcConfig,
    /// Run the paper's §4.2 Byzantine faultload: propose ⊥ in the
    /// agreement's INIT/VECT and 0 at the binary consensus layer.
    pub byzantine_bottom: bool,
    /// When `true` (default), a new agreement round starts as soon as
    /// there is an undelivered message. When `false`, rounds start only
    /// when the driver calls [`AtomicBroadcast::poll`] — which the
    /// single-threaded drivers do once their inbound queue is drained.
    /// This mirrors the paper's implementation (one protocol thread that
    /// exhausts pending input before continuing the agreement task) and
    /// is what lets an entire burst be ordered by a couple of agreements
    /// (§4.2, Figure 7).
    pub eager_rounds: bool,
    /// Broadcast-side batching and pipelining policy (see module docs).
    /// [`BatchPolicy::immediate`] recovers the paper's per-message
    /// protocol.
    pub batch: BatchPolicy,
}

impl Default for AbConfig {
    fn default() -> Self {
        AbConfig {
            mvc: MvcConfig::default(),
            byzantine_bottom: false,
            eager_rounds: true,
            batch: BatchPolicy::default(),
        }
    }
}

/// Counters exposed for the evaluation harness (paper Figures 4–7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbStats {
    /// Messages a-broadcast by this process.
    pub broadcast: u64,
    /// Messages a-delivered by this process.
    pub delivered: u64,
    /// Agreement rounds completed (MVC decisions observed).
    pub agreements: u64,
    /// Agreement rounds that decided ⊥ (forced a retry).
    pub bottom_agreements: u64,
    /// Batches flushed from the local queue into dissemination.
    pub batches: u64,
    /// Largest number of rounds any underlying binary consensus needed
    /// (the paper reports this is always 1 under realistic faultloads).
    pub bc_rounds_max: u32,
}

/// State of the atomic broadcast session for process `me`.
///
/// Unlike the one-shot consensus instances, atomic broadcast is a
/// long-lived session: any process may a-broadcast any number of messages
/// at any time, and deliveries come out in a single total order.
pub struct AtomicBroadcast {
    group: Group,
    me: ProcessId,
    keys: ProcessKeys,
    config: AbConfig,
    coin_seed: u64,
    /// Next rbid for our own a-broadcast *commands*.
    next_rbid: u64,
    /// Next sequence number for our own dissemination batches.
    next_batch: u64,
    /// Commands queued locally, waiting to be flushed into a batch.
    queue: VecDeque<QueuedCmd>,
    /// Own batches disseminated but not yet a-delivered (the pipelining
    /// window occupancy).
    own_in_flight: usize,
    /// Last driver-clock reading (for the age-based flush trigger).
    now_ns: u64,
    /// RBC instances of AB_MSG batch broadcasts, keyed by batch id.
    msg_rbc: HashMap<BatchId, ReliableBroadcast>,
    /// Batches received (RBC-delivered, decoded) but not yet a-delivered.
    received: BTreeMap<BatchId, BatchPayload>,
    /// Batch identifiers already a-delivered (dedup of late traffic).
    a_delivered: DeliveredSet,
    /// Command identifiers already a-delivered (a Byzantine sender can
    /// pack one rbid into overlapping batches; only the first ordered
    /// copy delivers).
    cmd_delivered: DeliveredSet,
    /// Current agreement round.
    round: u32,
    /// Whether we broadcast our AB_VECT for the current round.
    vect_sent: bool,
    /// Whether we proposed to the current round's MVC.
    proposed: bool,
    /// AB_VECT RBC instances keyed by (round, origin).
    vect_rbc: BTreeMap<(u32, ProcessId), ReliableBroadcast>,
    /// Decoded AB_VECT contents per round and origin.
    vects: BTreeMap<u32, Vec<Option<Vec<MsgId>>>>,
    /// MVC instances per round (kept alive for laggards; see module docs).
    agreements: BTreeMap<u32, MultiValuedConsensus>,
    /// A decided W' whose payloads have not all arrived yet.
    awaiting_payloads: Option<Vec<MsgId>>,
    /// True between [`AtomicBroadcast::resume`] and the first normally
    /// concluded round: enables the evidence-based round fast-forward
    /// (a resumed round estimate can lag the group).
    recovering: bool,
    /// Recently a-delivered batches (id → encoded batch payload),
    /// retained so a rejoining replica whose RBC instances missed the
    /// dissemination can still obtain ordered payloads (served through
    /// the state-transfer channel, accepted at `f+1` identical copies).
    retained: BTreeMap<BatchId, Bytes>,
    /// FIFO eviction order of `retained` (bounded by
    /// [`RETAIN_BATCHES`]).
    retained_order: VecDeque<BatchId>,
    /// True while a `poll` call is in progress (deferred-round mode).
    polling: bool,
    stats: AbStats,
    metrics: Metrics,
    /// Span path of this session; set by the owner at creation. Command
    /// spans get `{path}/m:{sender}:{rbid}` (own commands with `/queue`
    /// and `/rb` children marking the batching milestones), batch spans
    /// `{path}/b:{sender}:{seq}` (with an `/rb` child), round spans
    /// `{path}/r:{n}` (with `/vect:{origin}` and `/mvc` children).
    span_path: Option<String>,
}

impl core::fmt::Debug for AtomicBroadcast {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AtomicBroadcast")
            .field("me", &self.me)
            .field("round", &self.round)
            .field("pending", &self.received.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl AtomicBroadcast {
    /// Creates a session.
    ///
    /// `coin_seed` seeds the per-round consensus coins deterministically;
    /// pass entropy in production, a fixed seed for reproducible runs.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of group or the key view mismatches.
    pub fn new(group: Group, me: ProcessId, keys: ProcessKeys, coin_seed: u64) -> Self {
        Self::with_config(group, me, keys, coin_seed, AbConfig::default())
    }

    /// Creates a session with explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of group or the key view mismatches.
    pub fn with_config(
        group: Group,
        me: ProcessId,
        keys: ProcessKeys,
        coin_seed: u64,
        config: AbConfig,
    ) -> Self {
        assert!(group.contains(me), "me out of group");
        assert_eq!(keys.me(), me, "key view mismatch");
        AtomicBroadcast {
            group,
            me,
            keys,
            config,
            coin_seed,
            next_rbid: 0,
            next_batch: 0,
            queue: VecDeque::new(),
            own_in_flight: 0,
            now_ns: 0,
            msg_rbc: HashMap::new(),
            received: BTreeMap::new(),
            a_delivered: DeliveredSet::new(group.n()),
            cmd_delivered: DeliveredSet::new(group.n()),
            round: 0,
            vect_sent: false,
            proposed: false,
            vect_rbc: BTreeMap::new(),
            vects: BTreeMap::new(),
            agreements: BTreeMap::new(),
            awaiting_payloads: None,
            recovering: false,
            retained: BTreeMap::new(),
            retained_order: VecDeque::new(),
            polling: false,
            stats: AbStats::default(),
            metrics: Metrics::default(),
            span_path: None,
        }
    }

    /// Assigns this session's span path and opens its (session-long)
    /// span. All sub-instances are created lazily, so the path only needs
    /// to be set once, right after [`AtomicBroadcast::set_metrics`] and
    /// before any traffic: message spans, per-round spans and their
    /// children inherit it at creation.
    pub fn set_span_path(&mut self, path: String) {
        self.metrics.span_open(path.clone(), Layer::Ab);
        self.span_path = Some(path);
    }

    fn msg_span_path(&self, id: MsgId) -> Option<String> {
        self.span_path
            .as_ref()
            .map(|base| format!("{base}/m:{}:{}", id.sender, id.rbid))
    }

    fn batch_span_path(&self, id: BatchId) -> Option<String> {
        self.span_path
            .as_ref()
            .map(|base| format!("{base}/b:{}:{}", id.sender, id.rbid))
    }

    fn round_span_path(&self, round: u32) -> Option<String> {
        self.span_path
            .as_ref()
            .map(|base| format!("{base}/r:{round}"))
    }

    /// Attaches the process-wide metric registry and propagates it to
    /// every sub-protocol instance (message and vector broadcasts, and
    /// per-round agreement consensus).
    pub fn set_metrics(&mut self, metrics: Metrics) {
        for rb in self.msg_rbc.values_mut() {
            rb.set_metrics(metrics.clone());
        }
        for rb in self.vect_rbc.values_mut() {
            rb.set_metrics(metrics.clone());
        }
        for mvc in self.agreements.values_mut() {
            mvc.set_metrics(metrics.clone());
        }
        self.metrics = metrics;
    }

    /// Drives the agreement task in deferred-round mode (see
    /// [`AbConfig::eager_rounds`]): starts a new round if there are
    /// undelivered messages. Drivers call this once their inbound queue
    /// is drained. A no-op in eager mode or when a round is in progress.
    pub fn poll(&mut self) -> AbStep {
        self.polling = true;
        let out = self.settle();
        self.polling = false;
        out
    }

    /// Injects the driver clock (wall or virtual nanoseconds). Only the
    /// age-based flush trigger reads it; batching liveness never depends
    /// on it (an empty pipelining window always flushes immediately).
    pub fn set_now(&mut self, now_ns: u64) {
        self.now_ns = self.now_ns.max(now_ns);
    }

    /// Runs deferred transitions — notably age-based batch flushes after
    /// [`AtomicBroadcast::set_now`] advanced the clock — without touching
    /// the deferred-round polling flag. Drivers call this when the
    /// [`AtomicBroadcast::next_flush_deadline`] passes.
    pub fn tick(&mut self) -> AbStep {
        self.settle()
    }

    /// The driver-clock instant at which the oldest queued command must
    /// be flushed, or `None` when no timer is needed (empty queue or full
    /// pipelining window — a full window flushes on a-delivery instead).
    pub fn next_flush_deadline(&self) -> Option<u64> {
        if self.own_in_flight >= self.config.batch.window {
            return None;
        }
        let front = self.queue.front()?;
        Some(
            front
                .enqueued_ns
                .saturating_add(self.config.batch.max_delay_ns),
        )
    }

    /// Session counters for the evaluation harness.
    pub fn stats(&self) -> AbStats {
        self.stats
    }

    /// Current agreement round (0-based).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Number of commands received (in RBC-delivered batches) but not
    /// yet ordered.
    pub fn pending(&self) -> usize {
        self.received.values().map(|b| b.payloads.len()).sum()
    }

    /// Commands waiting in the local batch queue (not yet disseminated).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Own batches disseminated but not yet a-delivered (pipelining
    /// window occupancy).
    pub fn in_flight_batches(&self) -> usize {
        self.own_in_flight
    }

    /// Number of live `AB_MSG` reliable-broadcast instances (memory
    /// introspection; completed instances are pruned after delivery).
    pub fn live_msg_instances(&self) -> usize {
        self.msg_rbc.len()
    }

    /// Non-compacted delivered-set entries across the batch and command
    /// sets (memory introspection: stays near zero for correct senders,
    /// whose batch seqs and rbids are both sequential).
    pub fn delivered_set_sparse_len(&self) -> usize {
        self.a_delivered.sparse_len() + self.cmd_delivered.sparse_len()
    }

    /// A human-readable snapshot of the agreement machinery, for
    /// debugging stuck rounds.
    pub fn debug_snapshot(&self) -> String {
        let vects = self
            .vects
            .get(&self.round)
            .map(|v| v.iter().filter(|x| x.is_some()).count())
            .unwrap_or(0);
        let mvc = self.agreements.get(&self.round).map(|m| {
            format!(
                "mvc(decided={} bc_rounds={:?})",
                m.is_decided(),
                m.bc_rounds()
            )
        });
        format!(
            "round={} queued={} in_flight={} pending={} vect_sent={} proposed={} vects={} awaiting={:?} {:?}",
            self.round,
            self.queue.len(),
            self.own_in_flight,
            self.pending(),
            self.vect_sent,
            self.proposed,
            vects,
            self.awaiting_payloads.as_ref().map(Vec::len),
            mvc
        )
    }

    /// Rewinds/forwards a **fresh** session to a rejoin cursor: the
    /// delivered sets become pure watermarks, own identifier counters
    /// jump past everything peers have seen, and the session enters
    /// recovering mode (round fast-forward armed) until the first
    /// normally concluded round. Must be called before any traffic is
    /// fed to the instance.
    pub fn resume(&mut self, cursor: &AbCursor) {
        let n = self.group.n();
        self.round = cursor.round;
        self.a_delivered = DeliveredSet::from_watermarks(n, &cursor.a_delivered);
        self.cmd_delivered = DeliveredSet::from_watermarks(n, &cursor.cmd_delivered);
        self.next_rbid = cursor.next_rbid;
        self.next_batch = cursor.next_batch;
        self.vect_sent = false;
        self.proposed = false;
        self.awaiting_payloads = None;
        self.recovering = true;
        self.metrics.trace(
            Layer::Ab,
            "resume",
            format!("ab-round:{}", cursor.round),
            cursor.round,
        );
    }

    /// True between [`AtomicBroadcast::resume`] and the first normally
    /// concluded round.
    pub fn recovering(&self) -> bool {
        self.recovering
    }

    /// This session's position in the stream, as advertised to a
    /// rejoining replica: current round, per-origin delivered batch
    /// watermarks, and exclusive upper bounds of every batch seq and
    /// command rbid ever seen (delivered, pending, or in dissemination).
    pub fn hints(&self) -> crate::recovery::PeerHints {
        let n = self.group.n();
        let mut max_batch: Vec<u64> = (0..n).map(|o| self.a_delivered.max_seen(o)).collect();
        let mut max_rbid: Vec<u64> = (0..n).map(|o| self.cmd_delivered.max_seen(o)).collect();
        for (id, batch) in &self.received {
            max_batch[id.sender] = max_batch[id.sender].max(id.rbid + 1);
            max_rbid[id.sender] =
                max_rbid[id.sender].max(batch.start_rbid + batch.payloads.len() as u64);
        }
        for id in self.msg_rbc.keys() {
            max_batch[id.sender] = max_batch[id.sender].max(id.rbid + 1);
        }
        crate::recovery::PeerHints {
            round: self.round,
            batch_w: (0..n).map(|o| self.a_delivered.watermark_of(o)).collect(),
            max_batch,
            max_rbid,
        }
    }

    /// Batch ids a concluded round decided to order whose payloads have
    /// not arrived — empty in normal operation; after a rejoin the RBC
    /// instances that disseminated them may have completed before the
    /// wipe, in which case the payloads must be fetched out of band
    /// ([`AtomicBroadcast::retained_batch`] on peers) and fed back via
    /// [`AtomicBroadcast::inject_batch`].
    pub fn missing_payloads(&self) -> Vec<BatchId> {
        self.awaiting_payloads
            .as_ref()
            .map(|ids| {
                ids.iter()
                    .filter(|id| !self.received.contains_key(id))
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The encoded payload of a recently a-delivered batch, if still
    /// retained — what this process serves to a rejoiner stuck on
    /// [`AtomicBroadcast::missing_payloads`].
    pub fn retained_batch(&self, id: &BatchId) -> Option<Bytes> {
        self.retained.get(id).cloned()
    }

    /// Injects an out-of-band batch payload (obtained from `f+1` peers
    /// serving identical bytes — the caller is responsible for that
    /// quorum check; RBC totality guarantees correct peers retain
    /// identical encodings). A no-op for batches already delivered,
    /// already received, or not currently awaited.
    pub fn inject_batch(&mut self, id: BatchId, raw: Bytes) -> AbStep {
        if self.a_delivered.contains(&id) || self.received.contains_key(&id) {
            return Step::none();
        }
        match decode_batch(&raw) {
            Ok(batch) => {
                self.metrics.trace(
                    Layer::Ab,
                    "inject",
                    format!("ab-batch:{}:{}", id.sender, id.rbid),
                    self.round,
                );
                self.received.insert(id, batch);
                self.settle()
            }
            Err(_) => Step::none(),
        }
    }

    /// A-broadcasts `payload`: assigns the command its identifier,
    /// enqueues it in the broadcast-side batch queue, and lets the flush
    /// policy decide whether dissemination starts in this step or a later
    /// one. The returned identifier is the one the eventual
    /// [`AbDelivery`] carries.
    pub fn broadcast(&mut self, payload: Bytes) -> (MsgId, AbStep) {
        let id = MsgId {
            sender: self.me,
            rbid: self.next_rbid,
        };
        self.next_rbid += 1;
        self.stats.broadcast += 1;
        self.metrics.ab_broadcast.inc();
        self.metrics.trace(
            Layer::Ab,
            "broadcast",
            format!("ab:{}:{}", id.sender, id.rbid),
            self.round,
        );
        if let Some(path) = self.msg_span_path(id) {
            self.metrics.span_open(path.clone(), Layer::Ab);
            self.metrics.span_open(format!("{path}/queue"), Layer::Ab);
        }
        self.queue.push_back(QueuedCmd {
            rbid: id.rbid,
            payload,
            enqueued_ns: self.now_ns,
        });
        self.metrics.ab_queue_depth.set(self.queue.len() as u64);
        let out = self.settle();
        (id, out)
    }

    /// Handles a protocol message from `from`.
    pub fn handle_message(&mut self, from: ProcessId, message: AbMessage) -> AbStep {
        if !self.group.contains(from) {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        let mut out = match message {
            AbMessage::Msg { id, inner } => self.on_msg(from, id, inner),
            AbMessage::Vect {
                origin,
                round,
                inner,
            } => self.on_vect(from, origin, round, inner),
            AbMessage::Agree { round, inner } => self.on_agree(from, round, inner),
        };
        out.extend(self.settle());
        out
    }

    fn on_msg(&mut self, from: ProcessId, id: BatchId, inner: RbMessage) -> AbStep {
        if !self.group.contains(id.sender) {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        if self.a_delivered.contains(&id) {
            // Late traffic for an already-ordered batch; its RBC
            // instance has been pruned, nothing left to do.
            return Step::none();
        }
        let group = self.group;
        let me = self.me;
        let metrics = self.metrics.clone();
        let span = self.batch_span_path(id);
        if !self.msg_rbc.contains_key(&id) {
            if let Some(path) = &span {
                self.metrics.span_open(path.clone(), Layer::Ab);
            }
        }
        let rbc = self.msg_rbc.entry(id).or_insert_with(|| {
            let mut rb = ReliableBroadcast::new(group, me, id.sender);
            rb.set_metrics(metrics);
            if let Some(path) = &span {
                rb.set_span_path(format!("{path}/rb"));
            }
            rb
        });
        let sub = rbc.handle_message(from, inner);
        let delivered: Vec<Bytes> = sub.outputs.clone();
        let mut out = wrap_msg(id, sub);
        for payload in delivered {
            let batch = match decode_batch(&payload) {
                Ok(batch) => batch,
                Err(_) => {
                    // A malformed batch is attributable to its sender:
                    // RBC guarantees every correct process sees the same
                    // bytes, so all reach this verdict identically. The
                    // batch id still participates in agreement — it just
                    // orders zero commands.
                    out.push_fault(id.sender, FaultKind::Malformed);
                    BatchPayload {
                        start_rbid: 0,
                        payloads: Vec::new(),
                        raw: payload.clone(),
                    }
                }
            };
            for (i, p) in batch.payloads.iter().enumerate() {
                let cmd = MsgId {
                    sender: id.sender,
                    rbid: batch.start_rbid + i as u64,
                };
                if let Some(path) = self.msg_span_path(cmd) {
                    if cmd.sender == self.me {
                        // Own command: dissemination milestone reached.
                        self.metrics.span_close(&format!("{path}/rb"));
                    } else {
                        // Remote command: first sight is at batch decode.
                        self.metrics.span_open(path.clone(), Layer::Ab);
                    }
                    self.metrics.span_annotate(
                        &path,
                        ritas_metrics::SpanAnnotation::Phase,
                        p.len() as u64,
                    );
                }
            }
            self.received.entry(id).or_insert(batch);
        }
        out
    }

    fn on_vect(
        &mut self,
        from: ProcessId,
        origin: ProcessId,
        round: u32,
        inner: RbMessage,
    ) -> AbStep {
        if !self.group.contains(origin) {
            return Step::fault(from, FaultKind::NotEntitled);
        }
        if round > self.round.saturating_add(MAX_ROUND_AHEAD) {
            return Step::fault(from, FaultKind::Unjustified);
        }
        let group = self.group;
        let me = self.me;
        let metrics = self.metrics.clone();
        let span = self
            .round_span_path(round)
            .map(|p| format!("{p}/vect:{origin}"));
        let rbc = self.vect_rbc.entry((round, origin)).or_insert_with(|| {
            let mut rb = ReliableBroadcast::new(group, me, origin);
            rb.set_metrics(metrics);
            if let Some(path) = span {
                rb.set_span_path(path);
            }
            rb
        });
        let sub = rbc.handle_message(from, inner);
        let delivered: Vec<Bytes> = sub.outputs.clone();
        let mut out = wrap_vect(origin, round, sub);
        for payload in delivered {
            match decode_ids(&payload) {
                Ok(ids) => {
                    let n = self.group.n();
                    let slot = self.vects.entry(round).or_insert_with(|| vec![None; n]);
                    if slot[origin].is_none() {
                        slot[origin] = Some(ids);
                    }
                }
                Err(_) => out.push_fault(origin, FaultKind::Malformed),
            }
        }
        out
    }

    fn on_agree(&mut self, from: ProcessId, round: u32, inner: MvcMessage) -> AbStep {
        if round > self.round.saturating_add(MAX_ROUND_AHEAD) {
            return Step::fault(from, FaultKind::Unjustified);
        }
        let mvc = self.agreement_instance(round);
        let sub = mvc.handle_message(from, inner);
        wrap_agree(round, sub)
    }

    fn agreement_instance(&mut self, round: u32) -> &mut MultiValuedConsensus {
        let (group, me, keys, config) = (self.group, self.me, self.keys.clone(), self.config.mvc);
        let seed = self
            .coin_seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(round as u64);
        let metrics = self.metrics.clone();
        let mvc_path = self.round_span_path(round).map(|p| format!("{p}/mvc"));
        self.agreements.entry(round).or_insert_with(|| {
            let mut mvc = MultiValuedConsensus::with_config(
                group,
                me,
                keys,
                Box::new(DeterministicCoin::new(seed)) as Box<dyn Coin + Send>,
                config,
            );
            mvc.set_metrics(metrics);
            if let Some(p) = mvc_path {
                mvc.set_span_path(p);
            }
            mvc
        })
    }

    /// Runs all deferred transitions to a fixpoint. Batch flushes are
    /// never gated on the deferred-round polling flag: dissemination is
    /// eager, only the agreement task is deferred.
    fn settle(&mut self) -> AbStep {
        let mut out = Step::none();
        loop {
            let mut progressed = false;
            progressed |= self.maybe_flush(&mut out);
            progressed |= self.maybe_deliver(&mut out);
            if self.awaiting_payloads.is_none() {
                progressed |= self.maybe_fast_forward();
                progressed |= self.maybe_send_vect(&mut out);
                progressed |= self.maybe_propose(&mut out);
                progressed |= self.maybe_conclude_round(&mut out);
            }
            if !progressed {
                break;
            }
        }
        out
    }

    /// Flushes queued commands into disseminated batches while a flush
    /// trigger holds and the pipelining window has room. The window frees
    /// on a-delivery, so the `Idle` trigger alone guarantees liveness —
    /// the clock (`Age`) and queue depth (`Size`) triggers only shape
    /// batch sizes under load.
    fn maybe_flush(&mut self, out: &mut AbStep) -> bool {
        let mut progressed = false;
        loop {
            if self.queue.is_empty() || self.own_in_flight >= self.config.batch.window {
                break;
            }
            let policy = self.config.batch;
            let reason =
                if self.queue.len() >= policy.max_batch {
                    FlushReason::Size
                } else if self.own_in_flight == 0 {
                    FlushReason::Idle
                } else if self.queue.front().is_some_and(|c| {
                    self.now_ns >= c.enqueued_ns.saturating_add(policy.max_delay_ns)
                }) {
                    FlushReason::Age
                } else {
                    break;
                };
            self.flush_batch(reason, out);
            progressed = true;
        }
        progressed
    }

    /// Drains up to `max_batch` queued commands into one dissemination
    /// batch and starts its reliable broadcast.
    fn flush_batch(&mut self, reason: FlushReason, out: &mut AbStep) {
        let take = self.queue.len().min(self.config.batch.max_batch);
        let cmds: Vec<QueuedCmd> = self.queue.drain(..take).collect();
        let batch = BatchId {
            sender: self.me,
            rbid: self.next_batch,
        };
        self.next_batch += 1;
        self.own_in_flight += 1;
        self.stats.batches += 1;
        match reason {
            FlushReason::Size => self.metrics.ab_flush_size.inc(),
            FlushReason::Age => self.metrics.ab_flush_age.inc(),
            FlushReason::Idle => self.metrics.ab_flush_idle.inc(),
        }
        self.metrics.ab_batch_commands.record(take as u64);
        self.metrics.ab_queue_depth.set(self.queue.len() as u64);
        self.metrics.flight_record(
            ritas_metrics::FlightKind::Flush,
            self.me as u32,
            take as u64,
            reason as u64,
        );
        self.metrics.trace(
            Layer::Ab,
            "flush",
            format!("ab-batch:{}:{}", batch.sender, batch.rbid),
            take as u32,
        );
        // Per-command milestones: the queue segment ends, dissemination
        // begins (the `/rb` child closes when the batch RBC delivers
        // locally in `on_msg`).
        for c in &cmds {
            if let Some(path) = self.msg_span_path(MsgId {
                sender: self.me,
                rbid: c.rbid,
            }) {
                self.metrics.span_close(&format!("{path}/queue"));
                self.metrics.span_open(format!("{path}/rb"), Layer::Rb);
            }
        }
        let payload = encode_batch(
            cmds[0].rbid,
            &cmds.iter().map(|c| c.payload.clone()).collect::<Vec<_>>(),
        );
        let group = self.group;
        let me = self.me;
        let metrics = self.metrics.clone();
        let span = self.batch_span_path(batch);
        if let Some(path) = &span {
            self.metrics.span_open(path.clone(), Layer::Ab);
        }
        let rbc = self.msg_rbc.entry(batch).or_insert_with(|| {
            let mut rb = ReliableBroadcast::new(group, me, me);
            rb.set_metrics(metrics);
            if let Some(path) = span {
                rb.set_span_path(format!("{path}/rb"));
            }
            rb
        });
        let sub = rbc
            .broadcast(payload)
            .expect("fresh batch seq implies fresh instance");
        out.extend(wrap_msg(batch, sub));
    }

    /// Starts the agreement task for the current round once there is
    /// something to order.
    fn maybe_send_vect(&mut self, out: &mut AbStep) -> bool {
        if self.vect_sent || self.received.is_empty() {
            return false;
        }
        if !self.config.eager_rounds && !self.polling {
            return false;
        }
        self.vect_sent = true;
        let ids: BTreeSet<MsgId> = self.received.keys().copied().collect();
        let payload = encode_ids(&ids);
        let round = self.round;
        let me = self.me;
        let group = self.group;
        let metrics = self.metrics.clone();
        let round_span = self.round_span_path(round);
        if let Some(path) = &round_span {
            self.metrics.span_open(path.clone(), Layer::Ab);
        }
        let span = round_span.map(|p| format!("{p}/vect:{me}"));
        let rbc = self.vect_rbc.entry((round, me)).or_insert_with(|| {
            let mut rb = ReliableBroadcast::new(group, me, me);
            rb.set_metrics(metrics);
            if let Some(path) = span {
                rb.set_span_path(path);
            }
            rb
        });
        let sub = rbc.broadcast(payload).expect("one vect per round");
        out.extend(wrap_vect(me, round, sub));
        true
    }

    /// Proposes `W_i` to the round's MVC after `n − f` vectors arrived.
    fn maybe_propose(&mut self, out: &mut AbStep) -> bool {
        if self.proposed || !self.vect_sent {
            return false;
        }
        let Some(slot) = self.vects.get(&self.round) else {
            return false;
        };
        let count = slot.iter().filter(|v| v.is_some()).count();
        if count < self.group.quorum() {
            return false;
        }
        self.proposed = true;
        if let Some(path) = self.round_span_path(self.round) {
            self.metrics.span_annotate(
                &path,
                ritas_metrics::SpanAnnotation::VectCollected,
                count as u64,
            );
        }

        // W_i: identifiers supported by >= f+1 vectors.
        let mut support: BTreeMap<MsgId, usize> = BTreeMap::new();
        for ids in slot.iter().flatten() {
            let mut seen = BTreeSet::new();
            for id in ids {
                if seen.insert(*id) {
                    *support.entry(*id).or_insert(0) += 1;
                }
            }
        }
        let w: BTreeSet<MsgId> = support
            .into_iter()
            .filter(|(id, c)| *c >= self.group.one_correct() && !self.a_delivered.contains(id))
            .map(|(id, _)| id)
            .collect();

        let round = self.round;
        let byzantine = self.config.byzantine_bottom;
        let mvc = self.agreement_instance(round);
        let sub = if byzantine {
            mvc.propose_byzantine_bottom()
        } else {
            mvc.propose(encode_ids(&w))
        }
        .expect("one proposal per round");
        out.extend(wrap_agree(round, sub));
        true
    }

    /// Acts on the current round's MVC decision.
    fn maybe_conclude_round(&mut self, _out: &mut AbStep) -> bool {
        if !self.proposed {
            return false;
        }
        let round = self.round;
        let decision: Option<MvcValue> = self
            .agreements
            .get(&round)
            .and_then(|m| m.decision().cloned());
        if decision.is_some() {
            if let Some(r) = self.agreements.get(&round).and_then(|m| m.bc_rounds()) {
                self.stats.bc_rounds_max = self.stats.bc_rounds_max.max(r);
            }
        }
        match decision {
            Some(Some(bytes)) => {
                self.stats.agreements += 1;
                self.metrics.ab_agreements.inc();
                self.metrics
                    .trace(Layer::Ab, "agree", format!("ab-round:{round}"), round);
                match decode_ids(&bytes) {
                    Ok(ids) => {
                        let fresh: Vec<MsgId> = ids
                            .into_iter()
                            .filter(|id| !self.a_delivered.contains(id))
                            .collect();
                        self.awaiting_payloads = Some(fresh);
                    }
                    Err(_) => {
                        // Undecodable W' behaves like ⊥ (cannot happen with
                        // >= 1 correct supporter, kept for robustness).
                        self.stats.bottom_agreements += 1;
                    }
                }
                self.next_round();
                true
            }
            Some(None) => {
                self.stats.agreements += 1;
                self.stats.bottom_agreements += 1;
                self.metrics.ab_agreements.inc();
                self.metrics.trace(
                    Layer::Ab,
                    "agree-bottom",
                    format!("ab-round:{round}"),
                    round,
                );
                self.next_round();
                true
            }
            _ => false,
        }
    }

    /// While recovering, jumps to the highest round with RB-delivered
    /// `AB_VECT`s from at least `f+1` distinct origins — proof that a
    /// correct process reached that round, so the resumed round estimate
    /// was stale and waiting for its `n − f` vectors would stall forever
    /// (peers never re-send vectors for rounds they have passed). The
    /// `f+1` distinct-origin bar means `f` Byzantine processes alone can
    /// never drag the rejoiner ahead of every correct round.
    fn maybe_fast_forward(&mut self) -> bool {
        if !self.recovering {
            return false;
        }
        let one_correct = self.group.one_correct();
        let target = self
            .vects
            .range(self.round + 1..)
            .filter(|(_, slot)| slot.iter().filter(|v| v.is_some()).count() >= one_correct)
            .map(|(r, _)| *r)
            .next_back();
        let Some(round) = target else {
            return false;
        };
        self.metrics.trace(
            Layer::Ab,
            "fast-forward",
            format!("ab-round:{round}"),
            round,
        );
        if self.vect_sent {
            if let Some(path) = self.round_span_path(self.round) {
                self.metrics.span_close(&path);
            }
        }
        self.round = round;
        self.vect_sent = false;
        self.proposed = false;
        true
    }

    fn next_round(&mut self) {
        if let Some(path) = self.round_span_path(self.round) {
            self.metrics.span_close(&path);
        }
        self.round += 1;
        self.vect_sent = false;
        self.proposed = false;
        // A normally concluded round means the session is aligned with
        // the group again: disarm the rejoin fast-forward.
        self.recovering = false;
    }

    /// Delivers a decided set of batches once all their payloads have
    /// arrived, unpacking each batch into its commands in rbid order.
    fn maybe_deliver(&mut self, out: &mut AbStep) -> bool {
        let Some(ids) = self.awaiting_payloads.as_ref() else {
            return false;
        };
        if !ids.iter().all(|id| self.received.contains_key(id)) {
            return false;
        }
        let mut ids = self.awaiting_payloads.take().expect("checked above");
        // Deterministic total order across the decided batches.
        ids.sort();
        ids.dedup();
        self.metrics.ab_batch.record(ids.len() as u64);
        for id in ids {
            let batch = self.received.remove(&id).expect("payload present");
            self.a_delivered.insert(id);
            // Retain the encoded payload for rejoiners (bounded FIFO).
            if self.retained.insert(id, batch.raw.clone()).is_none() {
                self.retained_order.push_back(id);
                if self.retained_order.len() > RETAIN_BATCHES {
                    if let Some(old) = self.retained_order.pop_front() {
                        self.retained.remove(&old);
                    }
                }
            }
            // The completed RBC instance is pruned: every message we owed
            // the group for it has already been sent.
            self.msg_rbc.remove(&id);
            if id.sender == self.me {
                self.own_in_flight = self.own_in_flight.saturating_sub(1);
            }
            if let Some(path) = self.batch_span_path(id) {
                self.metrics.span_close(&path);
            }
            for (i, payload) in batch.payloads.into_iter().enumerate() {
                let cmd = MsgId {
                    sender: id.sender,
                    rbid: batch.start_rbid + i as u64,
                };
                if self.cmd_delivered.contains(&cmd) {
                    // A Byzantine sender packed this rbid into more than
                    // one batch; only the first ordered copy delivers.
                    continue;
                }
                self.cmd_delivered.insert(cmd);
                if let Some(path) = self.msg_span_path(cmd) {
                    self.metrics.span_close(&path);
                }
                self.stats.delivered += 1;
                self.metrics.ab_delivered.inc();
                self.metrics.trace(
                    Layer::Ab,
                    "deliver",
                    format!("ab:{}:{}", cmd.sender, cmd.rbid),
                    self.round,
                );
                out.push_output(AbDelivery { id: cmd, payload });
            }
        }
        true
    }
}

fn wrap_msg(id: MsgId, sub: Step<RbMessage, Bytes>) -> AbStep {
    sub.map_outputs(|_| None)
        .map_messages(|inner| AbMessage::Msg { id, inner })
}

fn wrap_vect(origin: ProcessId, round: u32, sub: Step<RbMessage, Bytes>) -> AbStep {
    sub.map_outputs(|_| None)
        .map_messages(|inner| AbMessage::Vect {
            origin,
            round,
            inner,
        })
}

fn wrap_agree(round: u32, sub: Step<MvcMessage, MvcValue>) -> AbStep {
    sub.map_outputs(|_| None)
        .map_messages(|inner| AbMessage::Agree { round, inner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::Target;
    use ritas_crypto::KeyTable;

    struct Net {
        insts: Vec<AtomicBroadcast>,
        queue: Vec<(ProcessId, ProcessId, AbMessage)>,
        delivered: Vec<Vec<AbDelivery>>,
        rng_state: u64,
        crashed: Vec<ProcessId>,
    }

    impl Net {
        fn new(n: usize, seed: u64) -> Self {
            Self::with_configs(n, seed, |_| AbConfig::default())
        }

        fn with_configs(n: usize, seed: u64, config: impl Fn(ProcessId) -> AbConfig) -> Self {
            let g = Group::new(n).unwrap();
            let table = KeyTable::dealer(n, seed);
            Net {
                insts: (0..n)
                    .map(|me| {
                        AtomicBroadcast::with_config(
                            g,
                            me,
                            table.view_of(me),
                            seed ^ (me as u64) << 16,
                            config(me),
                        )
                    })
                    .collect(),
                queue: Vec::new(),
                delivered: vec![Vec::new(); n],
                rng_state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
                crashed: Vec::new(),
            }
        }

        fn next_rand(&mut self) -> u64 {
            let mut x = self.rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.rng_state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn absorb(&mut self, from: ProcessId, step: AbStep) {
            if self.crashed.contains(&from) {
                return;
            }
            let n = self.insts.len();
            for out in step.messages {
                match out.target {
                    Target::All => {
                        for to in 0..n {
                            self.queue.push((from, to, out.message.clone()));
                        }
                    }
                    Target::One(to) => self.queue.push((from, to, out.message.clone())),
                }
            }
            for d in step.outputs {
                self.delivered[from].push(d);
            }
        }

        fn broadcast(&mut self, p: ProcessId, payload: &[u8]) -> MsgId {
            let (id, step) = self.insts[p].broadcast(Bytes::copy_from_slice(payload));
            self.absorb(p, step);
            id
        }

        fn run(&mut self) {
            let mut iterations = 0usize;
            while !self.queue.is_empty() {
                iterations += 1;
                assert!(iterations < 20_000_000, "runaway execution");
                let idx = (self.next_rand() as usize) % self.queue.len();
                let (from, to, msg) = self.queue.swap_remove(idx);
                if self.crashed.contains(&to) {
                    continue;
                }
                let step = self.insts[to].handle_message(from, msg);
                self.absorb(to, step);
            }
        }
    }

    #[test]
    fn id_and_message_codec_roundtrip() {
        let msg = AbMessage::Msg {
            id: MsgId { sender: 2, rbid: 7 },
            inner: RbMessage::Init(Bytes::from_static(b"m")),
        };
        assert_eq!(AbMessage::from_bytes(&msg.to_bytes()).unwrap(), msg);
        let vect = AbMessage::Vect {
            origin: 1,
            round: 3,
            inner: RbMessage::Echo(Bytes::from_static(b"v")),
        };
        assert_eq!(AbMessage::from_bytes(&vect.to_bytes()).unwrap(), vect);
    }

    #[test]
    fn ids_codec_roundtrip() {
        let ids: BTreeSet<MsgId> = [MsgId { sender: 0, rbid: 1 }, MsgId { sender: 3, rbid: 0 }]
            .into_iter()
            .collect();
        let enc = encode_ids(&ids);
        assert_eq!(
            decode_ids(&enc).unwrap(),
            ids.into_iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_message_delivered_everywhere() {
        let mut net = Net::new(4, 1);
        let id = net.broadcast(0, b"hello");
        net.run();
        for p in 0..4 {
            assert_eq!(net.delivered[p].len(), 1, "process {p}");
            assert_eq!(net.delivered[p][0].id, id);
            assert_eq!(net.delivered[p][0].payload.as_ref(), b"hello");
        }
    }

    #[test]
    fn total_order_across_processes() {
        for seed in 0..5 {
            let mut net = Net::new(4, 100 + seed);
            for p in 0..4 {
                for k in 0..3 {
                    net.broadcast(p, format!("m{p}:{k}").as_bytes());
                }
            }
            net.run();
            let order0: Vec<MsgId> = net.delivered[0].iter().map(|d| d.id).collect();
            assert_eq!(order0.len(), 12, "all 12 messages delivered");
            for p in 1..4 {
                let order: Vec<MsgId> = net.delivered[p].iter().map(|d| d.id).collect();
                assert_eq!(order, order0, "seed {seed}: order diverged at {p}");
            }
        }
    }

    #[test]
    fn no_duplicate_deliveries() {
        let mut net = Net::new(4, 9);
        for p in 0..4 {
            net.broadcast(p, b"x");
        }
        net.run();
        for p in 0..4 {
            let mut ids: Vec<MsgId> = net.delivered[p].iter().map(|d| d.id).collect();
            let before = ids.len();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicates at {p}");
        }
    }

    #[test]
    fn sender_order_preserved_per_sender() {
        // FIFO per sender is not guaranteed by atomic broadcast in
        // general, but identifiers from one sender are ordered within a
        // batch; at minimum every message must appear exactly once.
        let mut net = Net::new(4, 33);
        let ids: Vec<MsgId> = (0..5)
            .map(|k| net.broadcast(2, format!("m{k}").as_bytes()))
            .collect();
        net.run();
        for p in 0..4 {
            let got: BTreeSet<MsgId> = net.delivered[p].iter().map(|d| d.id).collect();
            assert_eq!(got, ids.iter().copied().collect());
        }
    }

    #[test]
    fn crash_faultload_delivers_for_survivors() {
        let mut net = Net::new(4, 5);
        net.crashed.push(3);
        for p in 0..3 {
            net.broadcast(p, format!("c{p}").as_bytes());
        }
        net.run();
        let order0: Vec<MsgId> = net.delivered[0].iter().map(|d| d.id).collect();
        assert_eq!(order0.len(), 3);
        for p in 1..3 {
            let order: Vec<MsgId> = net.delivered[p].iter().map(|d| d.id).collect();
            assert_eq!(order, order0);
        }
    }

    #[test]
    fn byzantine_bottom_attacker_cannot_block_delivery() {
        // Process 3 runs the paper's §4.2 attack at the MVC layer.
        for seed in 0..3 {
            let mut net = Net::with_configs(4, 700 + seed, |p| AbConfig {
                byzantine_bottom: p == 3,
                ..AbConfig::default()
            });
            for p in 0..3 {
                net.broadcast(p, format!("b{p}").as_bytes());
            }
            net.run();
            let order0: Vec<MsgId> = net.delivered[0].iter().map(|d| d.id).collect();
            assert_eq!(order0.len(), 3, "seed {seed}: deliveries missing");
            for p in 1..3 {
                let order: Vec<MsgId> = net.delivered[p].iter().map(|d| d.id).collect();
                assert_eq!(order, order0, "seed {seed}");
            }
        }
    }

    #[test]
    fn burst_is_ordered_with_few_agreements() {
        // The paper's key observation: a burst needs very few agreements.
        let mut net = Net::new(4, 77);
        for p in 0..4 {
            for k in 0..10 {
                net.broadcast(p, format!("burst{p}:{k}").as_bytes());
            }
        }
        net.run();
        for p in 0..4 {
            assert_eq!(net.delivered[p].len(), 40);
            let ag = net.insts[p].stats().agreements;
            assert!(ag <= 10, "too many agreements: {ag}");
        }
    }

    #[test]
    fn deferred_rounds_wait_for_poll() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 0);
        let config = AbConfig {
            eager_rounds: false,
            ..AbConfig::default()
        };
        let mut net = Net::with_configs(4, 55, |_| config);
        for p in 0..4 {
            net.broadcast(p, format!("d{p}").as_bytes());
        }
        // Drain all AB_MSG traffic: no agreement must have started.
        net.run();
        for p in 0..4 {
            assert!(net.delivered[p].is_empty(), "round started without poll");
            assert!(net.insts[p].pending() > 0);
        }
        // Poll everyone: the agreement task kicks off and orders the lot
        // in a single agreement per process.
        for p in 0..4 {
            let step = net.insts[p].poll();
            net.absorb(p, step);
        }
        // Subsequent rounds start via further polls; emulate the drivers
        // by polling whenever the queue drains.
        loop {
            net.run();
            let mut more = false;
            for p in 0..4 {
                let step = net.insts[p].poll();
                more |= !step.is_empty();
                net.absorb(p, step);
            }
            if !more && net.queue.is_empty() {
                break;
            }
        }
        let order0: Vec<MsgId> = net.delivered[0].iter().map(|d| d.id).collect();
        assert_eq!(order0.len(), 4);
        for p in 1..4 {
            let order: Vec<MsgId> = net.delivered[p].iter().map(|d| d.id).collect();
            assert_eq!(order, order0);
        }
        // One agreement ordered the entire batch.
        for p in 0..4 {
            assert_eq!(net.insts[p].stats().agreements, 1, "process {p}");
        }
        let _ = (g, table);
    }

    #[test]
    fn stats_track_broadcast_and_delivered() {
        let mut net = Net::new(4, 2);
        net.broadcast(1, b"s");
        net.run();
        assert_eq!(net.insts[1].stats().broadcast, 1);
        for p in 0..4 {
            assert_eq!(net.insts[p].stats().delivered, 1);
        }
    }

    #[test]
    fn delivered_set_compacts_to_watermarks() {
        let mut set = DeliveredSet::new(2);
        // Out-of-order insertions from origin 0.
        for rbid in [2u64, 0, 1, 4, 3] {
            set.insert(MsgId { sender: 0, rbid });
        }
        for rbid in 0..5 {
            assert!(set.contains(&MsgId { sender: 0, rbid }));
        }
        assert!(!set.contains(&MsgId { sender: 0, rbid: 5 }));
        assert!(!set.contains(&MsgId { sender: 1, rbid: 0 }));
        assert_eq!(set.sparse_len(), 0, "contiguous prefix must compact");
        // A gap keeps only the out-of-order entries sparse.
        set.insert(MsgId { sender: 1, rbid: 7 });
        assert_eq!(set.sparse_len(), 1);
        assert!(set.contains(&MsgId { sender: 1, rbid: 7 }));
        // Duplicate inserts are idempotent.
        set.insert(MsgId { sender: 0, rbid: 3 });
        assert_eq!(set.sparse_len(), 1);
    }

    #[test]
    fn long_session_memory_stays_flat() {
        let mut net = Net::new(4, 123);
        // Several sequential bursts through the same session.
        for burst in 0..4 {
            for p in 0..4 {
                for k in 0..5 {
                    net.broadcast(p, format!("b{burst}p{p}k{k}").as_bytes());
                }
            }
            net.run();
        }
        for p in 0..4 {
            assert_eq!(net.delivered[p].len(), 80);
            assert_eq!(net.insts[p].live_msg_instances(), 0);
            assert_eq!(
                net.insts[p].delivered_set_sparse_len(),
                0,
                "sequential rbids must fully compact at {p}"
            );
        }
    }

    #[test]
    fn delivered_msg_instances_are_pruned() {
        let mut net = Net::new(4, 91);
        for p in 0..4 {
            for k in 0..5 {
                net.broadcast(p, format!("p{p}k{k}").as_bytes());
            }
        }
        net.run();
        for p in 0..4 {
            assert_eq!(net.delivered[p].len(), 20);
            assert_eq!(
                net.insts[p].live_msg_instances(),
                0,
                "process {p} leaked AB_MSG broadcast instances"
            );
            assert_eq!(net.insts[p].pending(), 0);
        }
    }

    #[test]
    fn late_traffic_for_delivered_message_is_ignored() {
        let mut net = Net::new(4, 4);
        let id = net.broadcast(0, b"m");
        net.run();
        // Re-inject a READY for the long-finished broadcast.
        let step = net.insts[1].handle_message(
            2,
            AbMessage::Msg {
                id,
                inner: RbMessage::Ready(Bytes::from_static(b"m")),
            },
        );
        assert!(step.is_empty());
    }

    #[test]
    fn far_future_round_rejected() {
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 0);
        let mut ab = AtomicBroadcast::new(g, 0, table.view_of(0), 1);
        let step = ab.handle_message(
            1,
            AbMessage::Vect {
                origin: 1,
                round: 500,
                inner: RbMessage::Init(Bytes::from_static(b"v")),
            },
        );
        assert_eq!(step.faults[0].kind, FaultKind::Unjustified);
    }

    #[test]
    fn larger_group_total_order() {
        let mut net = Net::new(7, 13);
        for p in 0..7 {
            net.broadcast(p, format!("g{p}").as_bytes());
        }
        net.run();
        let order0: Vec<MsgId> = net.delivered[0].iter().map(|d| d.id).collect();
        assert_eq!(order0.len(), 7);
        for p in 1..7 {
            let order: Vec<MsgId> = net.delivered[p].iter().map(|d| d.id).collect();
            assert_eq!(order, order0);
        }
    }

    #[test]
    fn batch_codec_roundtrip() {
        // Empty, single and multi-command batches round-trip.
        for payloads in [
            vec![],
            vec![Bytes::from_static(b"one")],
            vec![
                Bytes::new(),
                Bytes::from_static(b"x"),
                Bytes::from(vec![7u8; 300]),
            ],
        ] {
            let enc = encode_batch(42, &payloads);
            let dec = decode_batch(&enc).unwrap();
            assert_eq!(dec.start_rbid, 42);
            assert_eq!(dec.payloads, payloads);
        }
    }

    #[test]
    fn batch_codec_rejects_malformed() {
        // Trailing bytes after a complete batch.
        let mut enc = encode_batch(0, &[Bytes::from_static(b"m")]).to_vec();
        enc.push(0xAA);
        assert!(decode_batch(&Bytes::from(enc)).is_err());
        // Truncated payload.
        let enc = encode_batch(0, &[Bytes::from_static(b"payload")]);
        let cut = enc.slice(..enc.len() - 3);
        assert!(decode_batch(&cut).is_err());
        // Oversized command count.
        let mut w = Writer::new();
        w.u64(0).u32((MAX_BATCH_CMDS + 1) as u32);
        assert!(decode_batch(&w.freeze()).is_err());
        // start_rbid + count overflows u64 (would alias earlier rbids).
        let mut w = Writer::new();
        w.u64(u64::MAX).u32(2);
        w.bytes(b"a").bytes(b"b");
        assert!(decode_batch(&w.freeze()).is_err());
        // Garbage.
        assert!(decode_batch(&Bytes::from_static(b"\xFF\x02")).is_err());
    }

    #[test]
    fn batching_packs_commands_and_preserves_total_order() {
        // Small batches, narrow window: the 12-command burst from one
        // sender must be packed into far fewer dissemination instances
        // while every process still delivers all 12 in the same order.
        let policy = BatchPolicy {
            max_batch: 4,
            max_delay_ns: u64::MAX,
            window: 2,
        };
        let mut net = Net::with_configs(4, 321, |_| AbConfig {
            batch: policy,
            ..AbConfig::default()
        });
        let ids: Vec<MsgId> = (0..12)
            .map(|k| net.broadcast(0, format!("c{k}").as_bytes()))
            .collect();
        net.run();
        let order0: Vec<MsgId> = net.delivered[0].iter().map(|d| d.id).collect();
        assert_eq!(
            order0.iter().copied().collect::<BTreeSet<_>>(),
            ids.iter().copied().collect::<BTreeSet<_>>()
        );
        for p in 1..4 {
            let order: Vec<MsgId> = net.delivered[p].iter().map(|d| d.id).collect();
            assert_eq!(order, order0, "total order diverged at {p}");
        }
        let batches = net.insts[0].stats().batches;
        assert!(
            batches < 12,
            "batching never packed more than one command ({batches} batches)"
        );
        // Dissemination state fully drained.
        assert_eq!(net.insts[0].queued(), 0);
        assert_eq!(net.insts[0].in_flight_batches(), 0);
    }

    #[test]
    fn window_bounds_in_flight_batches() {
        let policy = BatchPolicy {
            max_batch: 1,
            max_delay_ns: u64::MAX,
            window: 2,
        };
        let mut net = Net::with_configs(4, 11, |_| AbConfig {
            batch: policy,
            ..AbConfig::default()
        });
        for k in 0..5 {
            net.broadcast(1, format!("w{k}").as_bytes());
        }
        // Nothing delivered yet: exactly `window` batches disseminated,
        // the rest held in the queue.
        assert_eq!(net.insts[1].in_flight_batches(), 2);
        assert_eq!(net.insts[1].queued(), 3);
        // A-deliveries free window slots; the queue drains to empty.
        net.run();
        assert_eq!(net.insts[1].in_flight_batches(), 0);
        assert_eq!(net.insts[1].queued(), 0);
        for p in 0..4 {
            assert_eq!(net.delivered[p].len(), 5, "process {p}");
        }
    }

    #[test]
    fn age_trigger_flushes_on_tick() {
        let policy = BatchPolicy {
            max_batch: 100,
            max_delay_ns: 1_000,
            window: 8,
        };
        let g = Group::new(4).unwrap();
        let table = KeyTable::dealer(4, 0);
        let mut ab = AtomicBroadcast::with_config(
            g,
            0,
            table.view_of(0),
            1,
            AbConfig {
                batch: policy,
                ..AbConfig::default()
            },
        );
        ab.set_now(10);
        // First command flushes immediately (idle window)…
        let (_, step) = ab.broadcast(Bytes::from_static(b"a"));
        assert!(!step.messages.is_empty());
        assert_eq!(ab.in_flight_batches(), 1);
        // …subsequent ones are held for a batch (the steps carry no
        // dissemination traffic, so dropping them is sound here).
        let (_, held) = ab.broadcast(Bytes::from_static(b"b"));
        assert!(held.messages.is_empty());
        let (_, held) = ab.broadcast(Bytes::from_static(b"c"));
        assert!(held.messages.is_empty());
        assert_eq!(ab.queued(), 2);
        assert_eq!(ab.next_flush_deadline(), Some(10 + 1_000));
        // The clock passes the deadline: tick flushes both as one batch.
        ab.set_now(2_000);
        let step = ab.tick();
        assert!(!step.messages.is_empty());
        assert_eq!(ab.queued(), 0);
        assert_eq!(ab.in_flight_batches(), 2);
        assert_eq!(ab.stats().batches, 2);
        assert_eq!(ab.next_flush_deadline(), None);
    }

    #[test]
    fn immediate_policy_disseminates_per_command() {
        let mut net = Net::with_configs(4, 64, |_| AbConfig {
            batch: BatchPolicy::immediate(),
            ..AbConfig::default()
        });
        for k in 0..5 {
            net.broadcast(2, format!("i{k}").as_bytes());
        }
        // Every command became its own dissemination batch on the spot.
        assert_eq!(net.insts[2].stats().batches, 5);
        assert_eq!(net.insts[2].queued(), 0);
        net.run();
        for p in 0..4 {
            assert_eq!(net.delivered[p].len(), 5);
        }
    }

    #[test]
    fn overlapping_byzantine_batches_deliver_once() {
        let mut net = Net::new(4, 42);
        net.crashed.push(3);
        // The attacker announces two batches that both claim rbid 0 with
        // different payloads. Both batch ids get ordered; the rbid must
        // deliver exactly once, identically everywhere.
        for (bseq, tag) in [(0u64, &b"first"[..]), (1u64, &b"second"[..])] {
            let msg = AbMessage::Msg {
                id: MsgId {
                    sender: 3,
                    rbid: bseq,
                },
                inner: RbMessage::Init(encode_batch(0, &[Bytes::copy_from_slice(tag)])),
            };
            for to in 0..3 {
                net.queue.push((3, to, msg.clone()));
            }
        }
        net.run();
        let p0: Vec<(MsgId, Bytes)> = net.delivered[0]
            .iter()
            .map(|d| (d.id, d.payload.clone()))
            .collect();
        assert_eq!(p0.len(), 1, "rbid 0 must deliver exactly once");
        assert_eq!(p0[0].0, MsgId { sender: 3, rbid: 0 });
        for p in 1..3 {
            let pp: Vec<(MsgId, Bytes)> = net.delivered[p]
                .iter()
                .map(|d| (d.id, d.payload.clone()))
                .collect();
            assert_eq!(pp, p0, "payload choice diverged at {p}");
        }
    }

    #[test]
    fn malformed_batch_is_attributed_and_orders_nothing() {
        let mut net = Net::new(4, 21);
        net.crashed.push(3);
        // An undecodable batch payload from the attacker: the batch id is
        // still agreed on, zero commands come out, and the sender is
        // blamed with a Malformed fault at RBC delivery.
        let msg = AbMessage::Msg {
            id: MsgId { sender: 3, rbid: 0 },
            inner: RbMessage::Init(Bytes::from_static(b"\xFF\xFF\xFF")),
        };
        for to in 0..3 {
            net.queue.push((3, to, msg.clone()));
        }
        net.run();
        for p in 0..3 {
            assert!(
                net.delivered[p].is_empty(),
                "garbage batch delivered commands at {p}"
            );
        }
        // The session keeps making progress afterwards.
        net.broadcast(0, b"after");
        net.run();
        for p in 0..3 {
            assert_eq!(net.delivered[p].len(), 1, "process {p}");
            assert_eq!(net.delivered[p][0].payload.as_ref(), b"after");
        }
    }

    proptest::proptest! {
        #[test]
        fn batch_codec_roundtrip_prop(
            start in 0u64..u64::MAX / 2,
            payloads in proptest::collection::vec(
                proptest::collection::vec(proptest::prelude::any::<u8>(), 0..64),
                0..32
            ),
        ) {
            let payloads: Vec<Bytes> = payloads.into_iter().map(Bytes::from).collect();
            let enc = encode_batch(start, &payloads);
            let dec = decode_batch(&enc).unwrap();
            proptest::prop_assert_eq!(dec.start_rbid, start);
            proptest::prop_assert_eq!(dec.payloads, payloads);
        }

        #[test]
        fn batch_codec_rejects_trailing_bytes_prop(
            start in 0u64..1024,
            payloads in proptest::collection::vec(
                proptest::collection::vec(proptest::prelude::any::<u8>(), 0..16),
                0..8
            ),
            trailer in proptest::collection::vec(proptest::prelude::any::<u8>(), 1..16),
        ) {
            let payloads: Vec<Bytes> = payloads.into_iter().map(Bytes::from).collect();
            let mut enc = encode_batch(start, &payloads).to_vec();
            enc.extend_from_slice(&trailer);
            proptest::prop_assert!(decode_batch(&Bytes::from(enc)).is_err());
        }
    }
}
