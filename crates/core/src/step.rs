//! The sans-io step type: what a protocol wants done after handling input.
//!
//! Every protocol state machine in this crate is *sans-io*: handling an
//! input returns a [`Step`] describing the messages to transmit, the
//! outputs to deliver to the layer above, and any faults attributed to
//! peers — nothing is sent or delivered directly. This is the Rust
//! equivalent of the paper's control-block input/output functions (§3.2),
//! and it is what lets the identical protocol logic run over the threaded
//! transport, the deterministic test cluster and the discrete-event
//! simulator.

use crate::ProcessId;

/// Destination of an outgoing protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Send to every process, including the local one (the stack's
    /// broadcasts are n point-to-point sends, as in the paper).
    All,
    /// Send to a single process.
    One(ProcessId),
}

/// An outgoing message with its destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// Where to send it.
    pub target: Target,
    /// The message.
    pub message: M,
}

impl<M> Outgoing<M> {
    /// Wraps the message with a different type, preserving the target.
    pub fn map<N>(self, f: impl FnOnce(M) -> N) -> Outgoing<N> {
        Outgoing {
            target: self.target,
            message: f(self.message),
        }
    }
}

/// A fault attributed to a peer while processing its input.
///
/// Faults are observational only — the protocols never act on them (the
/// stack is leader-free and needs no removal/detection machinery, §5) —
/// but tests and the simulator use them to assert that Byzantine behaviour
/// was noticed and ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// The peer the fault is attributed to.
    pub from: ProcessId,
    /// Human-readable description (stable prefixes, suitable for asserts).
    pub kind: FaultKind,
}

/// Classification of observed peer misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The message could not be decoded.
    Malformed,
    /// A second, different message where the protocol allows only one
    /// (e.g. two `INIT`s from the sender, two `ECHO`s from one process).
    Equivocation,
    /// A message from a process not entitled to send it (e.g. `INIT` from
    /// a non-sender).
    NotEntitled,
    /// A value failed cryptographic verification.
    BadAuthenticator,
    /// A message that can never validate under Bracha's validation rule.
    Unjustified,
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            FaultKind::Malformed => "malformed message",
            FaultKind::Equivocation => "equivocation",
            FaultKind::NotEntitled => "sender not entitled",
            FaultKind::BadAuthenticator => "bad authenticator",
            FaultKind::Unjustified => "unjustified value",
        };
        f.write_str(s)
    }
}

/// The result of feeding one input to a protocol state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "a Step carries messages that must be transmitted"]
pub struct Step<M, O> {
    /// Messages to transmit.
    pub messages: Vec<Outgoing<M>>,
    /// Outputs for the layer above (deliveries / decisions).
    pub outputs: Vec<O>,
    /// Faults observed while processing.
    pub faults: Vec<Fault>,
}

impl<M, O> Default for Step<M, O> {
    fn default() -> Self {
        Step {
            messages: Vec::new(),
            outputs: Vec::new(),
            faults: Vec::new(),
        }
    }
}

impl<M, O> Step<M, O> {
    /// An empty step: nothing to send, deliver or report.
    pub fn none() -> Self {
        Step::default()
    }

    /// A step that broadcasts one message.
    pub fn broadcast(message: M) -> Self {
        Step {
            messages: vec![Outgoing {
                target: Target::All,
                message,
            }],
            ..Step::default()
        }
    }

    /// A step that unicasts one message.
    pub fn unicast(to: ProcessId, message: M) -> Self {
        Step {
            messages: vec![Outgoing {
                target: Target::One(to),
                message,
            }],
            ..Step::default()
        }
    }

    /// A step that only delivers an output.
    pub fn output(output: O) -> Self {
        Step {
            outputs: vec![output],
            ..Step::default()
        }
    }

    /// A step that only reports a fault.
    pub fn fault(from: ProcessId, kind: FaultKind) -> Self {
        Step {
            faults: vec![Fault { from, kind }],
            ..Step::default()
        }
    }

    /// Whether the step carries nothing at all.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty() && self.outputs.is_empty() && self.faults.is_empty()
    }

    /// Appends everything from `other`.
    pub fn extend(&mut self, other: Step<M, O>) {
        self.messages.extend(other.messages);
        self.outputs.extend(other.outputs);
        self.faults.extend(other.faults);
    }

    /// Adds a broadcast to this step.
    pub fn push_broadcast(&mut self, message: M) {
        self.messages.push(Outgoing {
            target: Target::All,
            message,
        });
    }

    /// Adds a unicast to this step.
    pub fn push_unicast(&mut self, to: ProcessId, message: M) {
        self.messages.push(Outgoing {
            target: Target::One(to),
            message,
        });
    }

    /// Adds an output to this step.
    pub fn push_output(&mut self, output: O) {
        self.outputs.push(output);
    }

    /// Adds a fault to this step.
    pub fn push_fault(&mut self, from: ProcessId, kind: FaultKind) {
        self.faults.push(Fault { from, kind });
    }

    /// Re-wraps messages into a parent protocol's message type — how a
    /// parent control block forwards its child's traffic (control block
    /// chaining, §3.3).
    pub fn map_messages<N>(self, mut f: impl FnMut(M) -> N) -> Step<N, O> {
        Step {
            messages: self.messages.into_iter().map(|m| m.map(&mut f)).collect(),
            outputs: self.outputs,
            faults: self.faults,
        }
    }

    /// Converts child outputs into the parent's output type; outputs for
    /// which `f` returns `None` are consumed internally by the parent.
    pub fn map_outputs<P>(self, mut f: impl FnMut(O) -> Option<P>) -> Step<M, P> {
        Step {
            messages: self.messages,
            outputs: self.outputs.into_iter().filter_map(&mut f).collect(),
            faults: self.faults,
        }
    }

    /// Splits the outputs off, leaving messages and faults.
    pub fn take_outputs(&mut self) -> Vec<O> {
        std::mem::take(&mut self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_step_is_empty() {
        let s: Step<u8, u8> = Step::none();
        assert!(s.is_empty());
    }

    #[test]
    fn broadcast_constructor() {
        let s: Step<&str, ()> = Step::broadcast("m");
        assert_eq!(s.messages.len(), 1);
        assert_eq!(s.messages[0].target, Target::All);
    }

    #[test]
    fn unicast_constructor() {
        let s: Step<&str, ()> = Step::unicast(2, "m");
        assert_eq!(s.messages[0].target, Target::One(2));
    }

    #[test]
    fn extend_concatenates() {
        let mut a: Step<u8, u8> = Step::broadcast(1);
        let mut b = Step::output(9);
        b.push_fault(3, FaultKind::Equivocation);
        a.extend(b);
        assert_eq!(a.messages.len(), 1);
        assert_eq!(a.outputs, vec![9]);
        assert_eq!(a.faults.len(), 1);
    }

    #[test]
    fn map_messages_preserves_target() {
        let s: Step<u8, ()> = Step::unicast(1, 7);
        let t = s.map_messages(|m| (m, "wrapped"));
        assert_eq!(t.messages[0].target, Target::One(1));
        assert_eq!(t.messages[0].message, (7, "wrapped"));
    }

    #[test]
    fn map_outputs_filters() {
        let mut s: Step<(), u8> = Step::output(1);
        s.push_output(2);
        let t = s.map_outputs(|o| (o > 1).then_some(o * 10));
        assert_eq!(t.outputs, vec![20]);
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::Equivocation.to_string(), "equivocation");
    }
}
