//! The **proactive recovery scheduler** — rotating wipe-and-rejoin with
//! epoch key refresh (the paper's intrusion-tolerance guarantee, §1).
//!
//! PR 8's reactive machinery recovers a replica *after* something killed
//! it. The paper's stronger claim is that a *stealthy* intruder — one
//! that compromised a replica without tripping any detector — has a
//! bounded lifetime. This module provides that bound: replicas are
//! wiped and rejoined on a rotating schedule, and every rotation round
//! re-derives the pairwise key table under a fresh **epoch**
//! (`HKDF(master, epoch)`), so both the intruder's foothold and any
//! keys it exfiltrated expire with the rotation period.
//!
//! # Slot ordering through atomic broadcast
//!
//! Which replica recovers next is not a local decision: the rotation
//! protocol is itself a replicated state machine. [`RecoveryCommand`]s
//! ride the atomic-broadcast stream (under the RSM's `TAG_RECOVERY`
//! frame tag), so every correct replica applies the same commands in
//! the same order to the same [`RotationState`] — and the safety
//! invariant *at most one replica in Syncing/CatchingUp at a time due
//! to rotation* holds by construction: a second `ScheduleWipe` is
//! rejected by [`RotationState::apply`] while a slot is active, on
//! every replica, deterministically. The atomic-broadcast **origin** of
//! each command is validated too ([`RotationState::apply`] takes the
//! sender): `ScheduleWipe` and `WipeComplete` are accepted only from
//! the victim itself, so a Byzantine peer can neither open somebody
//! else's slot nor forge a `WipeComplete` while the victim is still
//! dark mid-wipe (which would let it immediately schedule the next
//! victim and put two replicas down at once).
//!
//! The protocol round is:
//!
//! 1. the *expected victim* (`next_idx % n`) a-broadcasts
//!    `ScheduleWipe{victim: me, epoch: current + 1}` when its rotation
//!    period fires;
//! 2. applying the accepted `ScheduleWipe` advances the key epoch on
//!    every replica (the transport re-derives its key table; the old
//!    epoch dies after a grace window) and marks the slot active;
//! 3. the victim wipes itself and runs the ordinary rejoin pipeline
//!    (snapshot transfer → catch-up → Live), rejoining under the *new*
//!    epoch, which it learns from authenticated traffic;
//! 4. back Live, the victim a-broadcasts `WipeComplete`, which closes
//!    the slot, advances the rotation cursor, and clears the victim's
//!    pre-wipe suspicion rows;
//! 5. if instead the group is degraded (stall watchdog, suspicion
//!    pressure) the victim defers — or any replica clears a slot stuck
//!    longer than [`RotationConfig::abort_after`] — via `DeferWipe`,
//!    so rotation never *voluntarily* pushes the group past `f`
//!    unavailable.
//!
//! [`RotationState`] is part of the replicated state proper: it is
//! carried inside snapshots (appended to the application payload), so a
//! rejoiner resumes the rotation protocol exactly where the group is.

use crate::codec::{Reader, WireError, WireMessage, Writer};
use std::time::Duration;

/// Why a rotation slot was given up instead of executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeferReason {
    /// The victim's stall watchdog reported no protocol progress — the
    /// group may already be at its failure budget.
    Stalled,
    /// The victim saw suspicion evidence above the configured threshold
    /// — some peer is already misbehaving, so don't also go down.
    Suspicion,
    /// The slot sat active past [`RotationConfig::abort_after`] and a
    /// peer cleared it (the victim likely died mid-wipe; the reactive
    /// path owns it now).
    StuckSlot,
}

impl DeferReason {
    fn code(self) -> u8 {
        match self {
            DeferReason::Stalled => 0,
            DeferReason::Suspicion => 1,
            DeferReason::StuckSlot => 2,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(DeferReason::Stalled),
            1 => Some(DeferReason::Suspicion),
            2 => Some(DeferReason::StuckSlot),
            _ => None,
        }
    }

    /// Stable kebab-case name for dumps and the `/state` endpoint.
    pub fn as_str(self) -> &'static str {
        match self {
            DeferReason::Stalled => "stalled",
            DeferReason::Suspicion => "suspicion",
            DeferReason::StuckSlot => "stuck-slot",
        }
    }
}

/// A rotation-protocol command, ordered through atomic broadcast (the
/// payload of a `TAG_RECOVERY` RSM frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryCommand {
    /// Open a rotation slot: wipe `victim` and advance the key table to
    /// `epoch`. Valid only when *broadcast by* the expected victim, for
    /// the successor epoch, while no slot is active.
    ScheduleWipe {
        /// The replica to be wiped.
        victim: u32,
        /// The key epoch the group rotates to (must be current + 1).
        epoch: u64,
    },
    /// Close the active slot: `victim` is back Live under `epoch`.
    /// Valid only when broadcast by the victim itself — being able to
    /// a-broadcast it under the current epoch *is* the proof of life.
    WipeComplete {
        /// The replica that completed its wipe-and-rejoin.
        victim: u32,
        /// The epoch its slot was scheduled with.
        epoch: u64,
    },
    /// Abandon the active slot without a wipe (or after a failed one).
    /// The self-assessed reasons ([`DeferReason::Stalled`],
    /// [`DeferReason::Suspicion`]) are valid only from the victim;
    /// [`DeferReason::StuckSlot`] is the peers' watchdog path and is
    /// accepted from any replica.
    DeferWipe {
        /// The victim of the abandoned slot.
        victim: u32,
        /// The epoch its slot was scheduled with.
        epoch: u64,
        /// Why the slot was abandoned.
        reason: DeferReason,
    },
}

const CMD_SCHEDULE: u8 = 1;
const CMD_COMPLETE: u8 = 2;
const CMD_DEFER: u8 = 3;

impl WireMessage for RecoveryCommand {
    fn encode(&self, w: &mut Writer) {
        match *self {
            RecoveryCommand::ScheduleWipe { victim, epoch } => {
                w.u8(CMD_SCHEDULE).u32(victim).u64(epoch);
            }
            RecoveryCommand::WipeComplete { victim, epoch } => {
                w.u8(CMD_COMPLETE).u32(victim).u64(epoch);
            }
            RecoveryCommand::DeferWipe {
                victim,
                epoch,
                reason,
            } => {
                w.u8(CMD_DEFER).u32(victim).u64(epoch).u8(reason.code());
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8("rot.cmd")?;
        let victim = r.u32("rot.victim")?;
        let epoch = r.u64("rot.epoch")?;
        match tag {
            CMD_SCHEDULE => Ok(RecoveryCommand::ScheduleWipe { victim, epoch }),
            CMD_COMPLETE => Ok(RecoveryCommand::WipeComplete { victim, epoch }),
            CMD_DEFER => {
                let code = r.u8("rot.reason")?;
                let reason = DeferReason::from_code(code).ok_or(WireError::InvalidTag {
                    what: "rot.reason",
                    tag: code,
                })?;
                Ok(RecoveryCommand::DeferWipe {
                    victim,
                    epoch,
                    reason,
                })
            }
            _ => Err(WireError::InvalidTag {
                what: "rot.cmd",
                tag,
            }),
        }
    }
}

/// What applying a [`RecoveryCommand`] did to the [`RotationState`] —
/// the driver turns accepted effects into side effects (key switch,
/// gauges, suspicion clearing) *outside* the state lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationEffect {
    /// A slot opened; the group's key epoch advanced to `epoch`.
    Scheduled {
        /// The replica now expected to wipe itself.
        victim: u32,
        /// The new key epoch.
        epoch: u64,
    },
    /// The active slot closed successfully.
    Completed {
        /// The rejuvenated replica.
        victim: u32,
        /// The epoch it rejoined under.
        epoch: u64,
    },
    /// The active slot was abandoned.
    Deferred {
        /// The victim of the abandoned slot.
        victim: u32,
        /// The epoch its slot carried.
        epoch: u64,
        /// Why it was abandoned.
        reason: DeferReason,
    },
    /// The command was invalid in the current state and was ignored
    /// (duplicate, stale, out of turn, or out of range). Deterministic
    /// on every replica, so an ignored command is ignored everywhere.
    Rejected,
}

/// The replicated rotation-coordinator state. Pure data + a pure
/// deterministic transition function ([`RotationState::apply`]); lives
/// inside the RSM's recovery core, mutated only by ordered commands,
/// and carried inside snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RotationState {
    /// Current key epoch (advances when a `ScheduleWipe` is accepted).
    pub epoch: u64,
    /// The in-flight slot, `(victim, epoch)`, if any. At most one —
    /// this field *is* the "≤ 1 rotating replica" invariant.
    pub active: Option<(u32, u64)>,
    /// Rotation cursor; the next slot belongs to `next_idx % n`.
    pub next_idx: u64,
    /// Slots closed by `WipeComplete`.
    pub rounds_completed: u64,
    /// Slots closed by `DeferWipe`.
    pub deferrals: u64,
}

impl RotationState {
    /// The replica whose turn the next slot is.
    pub fn expected_victim(&self, n: usize) -> u32 {
        debug_assert!(n > 0);
        (self.next_idx % n as u64) as u32
    }

    /// Applies one ordered command broadcast by `sender` — the
    /// atomic-broadcast origin of the `TAG_RECOVERY` frame, which the
    /// broadcast layer authenticates, so a Byzantine replica cannot
    /// spoof it. Total and deterministic: every correct replica,
    /// applying the same stream, reaches the same state and returns
    /// the same effect.
    ///
    /// Sender discipline: `ScheduleWipe` and `WipeComplete` are valid
    /// only from the victim itself (otherwise one Byzantine replica
    /// could forge `WipeComplete` for a victim still dark mid-wipe and
    /// immediately schedule the next one — two replicas unavailable at
    /// once, breaking the "≤ 1 rotating replica" invariant). `DeferWipe`
    /// with [`DeferReason::StuckSlot`] is the peers' watchdog path and
    /// is accepted from any replica; the self-assessed reasons are
    /// victim-only.
    pub fn apply(&mut self, cmd: &RecoveryCommand, sender: u32, n: usize) -> RotationEffect {
        match *cmd {
            RecoveryCommand::ScheduleWipe { victim, epoch } => {
                if sender != victim
                    || self.active.is_some()
                    || epoch != self.epoch + 1
                    || victim != self.expected_victim(n)
                    || victim as usize >= n
                {
                    return RotationEffect::Rejected;
                }
                self.epoch = epoch;
                self.active = Some((victim, epoch));
                RotationEffect::Scheduled { victim, epoch }
            }
            RecoveryCommand::WipeComplete { victim, epoch } => {
                if sender != victim || self.active != Some((victim, epoch)) {
                    return RotationEffect::Rejected;
                }
                self.active = None;
                self.next_idx += 1;
                self.rounds_completed += 1;
                RotationEffect::Completed { victim, epoch }
            }
            RecoveryCommand::DeferWipe {
                victim,
                epoch,
                reason,
            } => {
                if self.active != Some((victim, epoch))
                    || (reason != DeferReason::StuckSlot && sender != victim)
                {
                    return RotationEffect::Rejected;
                }
                // The cursor advances on deferral too: a victim that is
                // repeatedly unable to rotate must not block everyone
                // else's rejuvenation — it gets its turn again next
                // cycle. (The key epoch already advanced at schedule
                // time, so the round's key refresh is not lost.)
                self.active = None;
                self.next_idx += 1;
                self.deferrals += 1;
                RotationEffect::Deferred {
                    victim,
                    epoch,
                    reason,
                }
            }
        }
    }

    /// Appends the canonical encoding (fixed-width, so snapshot digests
    /// stay byte-identical across replicas).
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.epoch);
        match self.active {
            Some((victim, epoch)) => {
                w.u8(1).u32(victim).u64(epoch);
            }
            None => {
                w.u8(0).u32(0).u64(0);
            }
        }
        w.u64(self.next_idx)
            .u64(self.rounds_completed)
            .u64(self.deferrals);
    }

    /// Decodes an encoding produced by [`RotationState::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated or invalid input.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let epoch = r.u64("rot.state.epoch")?;
        let flag = r.u8("rot.state.active")?;
        let victim = r.u32("rot.state.victim")?;
        let slot_epoch = r.u64("rot.state.slot_epoch")?;
        let active = match flag {
            0 => None,
            1 => Some((victim, slot_epoch)),
            _ => {
                return Err(WireError::InvalidTag {
                    what: "rot.state.active",
                    tag: flag,
                })
            }
        };
        Ok(RotationState {
            epoch,
            active,
            next_idx: r.u64("rot.state.next_idx")?,
            rounds_completed: r.u64("rot.state.rounds")?,
            deferrals: r.u64("rot.state.deferrals")?,
        })
    }
}

/// Tuning for the rotation driver (the thread that proposes/defers
/// slots and triggers the self-wipe — the *liveness* side; safety lives
/// entirely in [`RotationState::apply`]).
#[derive(Debug, Clone)]
pub struct RotationConfig {
    /// How long the expected victim waits, once it is its turn, before
    /// proposing its own slot.
    pub period: Duration,
    /// Any replica clears a slot that has been active this long with
    /// `DeferWipe(StuckSlot)` — the victim presumably died mid-wipe and
    /// the reactive recovery path owns it now.
    pub abort_after: Duration,
    /// Defer the own slot when total suspicion evidence across peers
    /// reaches this level (someone is already misbehaving — do not also
    /// go down voluntarily). `u64::MAX` disables the rule.
    pub suspicion_defer_threshold: u64,
}

impl Default for RotationConfig {
    fn default() -> Self {
        RotationConfig {
            period: Duration::from_secs(30),
            abort_after: Duration::from_secs(120),
            suspicion_defer_threshold: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — no external RNG dependencies, seeds
    /// explored exhaustively below.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    #[test]
    fn command_codec_roundtrip() {
        let cmds = [
            RecoveryCommand::ScheduleWipe {
                victim: 2,
                epoch: 7,
            },
            RecoveryCommand::WipeComplete {
                victim: 2,
                epoch: 7,
            },
            RecoveryCommand::DeferWipe {
                victim: 0,
                epoch: 1,
                reason: DeferReason::Stalled,
            },
            RecoveryCommand::DeferWipe {
                victim: 3,
                epoch: 9,
                reason: DeferReason::StuckSlot,
            },
        ];
        for cmd in cmds {
            assert_eq!(RecoveryCommand::from_bytes(&cmd.to_bytes()).unwrap(), cmd);
        }
        // Hostile inputs: bad tag, bad reason, truncation.
        assert!(RecoveryCommand::from_bytes(&[9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        let mut bad_reason = RecoveryCommand::DeferWipe {
            victim: 0,
            epoch: 0,
            reason: DeferReason::Stalled,
        }
        .to_bytes()
        .to_vec();
        *bad_reason.last_mut().unwrap() = 99;
        assert!(RecoveryCommand::from_bytes(&bad_reason).is_err());
        let enc = RecoveryCommand::ScheduleWipe {
            victim: 1,
            epoch: 2,
        }
        .to_bytes();
        assert!(RecoveryCommand::from_bytes(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn state_codec_roundtrip() {
        let states = [
            RotationState::default(),
            RotationState {
                epoch: 5,
                active: Some((2, 5)),
                next_idx: 6,
                rounds_completed: 4,
                deferrals: 1,
            },
        ];
        for s in states {
            let mut w = Writer::new();
            s.encode(&mut w);
            let buf = w.freeze();
            let mut r = Reader::new(&buf);
            assert_eq!(RotationState::decode(&mut r).unwrap(), s);
            r.finish().unwrap();
        }
        // Encoding is fixed-width regardless of the active flag, so
        // snapshot digests cannot diverge on layout.
        let mut a = Writer::new();
        states[0].encode(&mut a);
        let mut b = Writer::new();
        states[1].encode(&mut b);
        assert_eq!(a.freeze().len(), b.freeze().len());
    }

    #[test]
    fn happy_path_full_rotation_of_four() {
        let n = 4;
        let mut st = RotationState::default();
        for round in 0..n as u64 {
            let victim = st.expected_victim(n);
            assert_eq!(victim as u64, round % n as u64);
            let epoch = st.epoch + 1;
            assert_eq!(
                st.apply(&RecoveryCommand::ScheduleWipe { victim, epoch }, victim, n),
                RotationEffect::Scheduled { victim, epoch }
            );
            assert_eq!(st.active, Some((victim, epoch)));
            assert_eq!(
                st.apply(&RecoveryCommand::WipeComplete { victim, epoch }, victim, n),
                RotationEffect::Completed { victim, epoch }
            );
        }
        assert_eq!(st.rounds_completed, n as u64);
        assert_eq!(st.epoch, n as u64);
        assert_eq!(st.deferrals, 0);
        assert_eq!(st.expected_victim(n), 0); // cursor wrapped around
    }

    #[test]
    fn second_schedule_rejected_while_slot_active() {
        let n = 4;
        let mut st = RotationState::default();
        st.apply(
            &RecoveryCommand::ScheduleWipe {
                victim: 0,
                epoch: 1,
            },
            0,
            n,
        );
        // No second slot — from anyone, at any epoch, even the victim
        // proposing itself honestly — while one is active: the "≤ 1
        // non-Live due to rotation" invariant.
        for victim in 0..4 {
            for epoch in [1, 2, 3] {
                assert_eq!(
                    st.apply(&RecoveryCommand::ScheduleWipe { victim, epoch }, victim, n),
                    RotationEffect::Rejected
                );
            }
        }
        assert_eq!(st.active, Some((0, 1)));
    }

    #[test]
    fn out_of_turn_stale_and_mismatched_commands_rejected() {
        let n = 4;
        let mut st = RotationState::default();
        // Not victim 1's turn.
        assert_eq!(
            st.apply(
                &RecoveryCommand::ScheduleWipe {
                    victim: 1,
                    epoch: 1
                },
                1,
                n
            ),
            RotationEffect::Rejected
        );
        // Wrong epoch (not current + 1).
        assert_eq!(
            st.apply(
                &RecoveryCommand::ScheduleWipe {
                    victim: 0,
                    epoch: 2
                },
                0,
                n
            ),
            RotationEffect::Rejected
        );
        // Victim out of range.
        let mut big = RotationState {
            next_idx: 7,
            ..RotationState::default()
        };
        assert_eq!(
            big.apply(
                &RecoveryCommand::ScheduleWipe {
                    victim: 7,
                    epoch: 1
                },
                7,
                4
            ),
            RotationEffect::Rejected
        );
        // Complete/defer without a matching active slot.
        assert_eq!(
            st.apply(
                &RecoveryCommand::WipeComplete {
                    victim: 0,
                    epoch: 1
                },
                0,
                n
            ),
            RotationEffect::Rejected
        );
        st.apply(
            &RecoveryCommand::ScheduleWipe {
                victim: 0,
                epoch: 1,
            },
            0,
            n,
        );
        assert_eq!(
            st.apply(
                &RecoveryCommand::WipeComplete {
                    victim: 1,
                    epoch: 1
                },
                1,
                n
            ),
            RotationEffect::Rejected
        );
        assert_eq!(
            st.apply(
                &RecoveryCommand::WipeComplete {
                    victim: 0,
                    epoch: 2
                },
                0,
                n
            ),
            RotationEffect::Rejected
        );
        // A duplicate completion replays as a no-op rejection.
        assert_ne!(
            st.apply(
                &RecoveryCommand::WipeComplete {
                    victim: 0,
                    epoch: 1
                },
                0,
                n
            ),
            RotationEffect::Rejected
        );
        assert_eq!(
            st.apply(
                &RecoveryCommand::WipeComplete {
                    victim: 0,
                    epoch: 1
                },
                0,
                n
            ),
            RotationEffect::Rejected
        );
    }

    #[test]
    fn commands_from_the_wrong_sender_rejected() {
        let n = 4;
        let mut st = RotationState::default();
        // Peer 2 cannot open victim 0's slot on its behalf.
        assert_eq!(
            st.apply(
                &RecoveryCommand::ScheduleWipe {
                    victim: 0,
                    epoch: 1
                },
                2,
                n
            ),
            RotationEffect::Rejected
        );
        assert_eq!(st.active, None);
        // The victim itself opens it.
        assert_eq!(
            st.apply(
                &RecoveryCommand::ScheduleWipe {
                    victim: 0,
                    epoch: 1
                },
                0,
                n
            ),
            RotationEffect::Scheduled {
                victim: 0,
                epoch: 1
            }
        );
        // A Byzantine peer cannot forge `WipeComplete` while the victim
        // is still dark mid-wipe — that would free the slot and let it
        // schedule the next victim, putting two replicas down at once.
        assert_eq!(
            st.apply(
                &RecoveryCommand::WipeComplete {
                    victim: 0,
                    epoch: 1
                },
                2,
                n
            ),
            RotationEffect::Rejected
        );
        assert_eq!(st.active, Some((0, 1)));
        // Self-assessed deferrals are victim-only too.
        for reason in [DeferReason::Stalled, DeferReason::Suspicion] {
            assert_eq!(
                st.apply(
                    &RecoveryCommand::DeferWipe {
                        victim: 0,
                        epoch: 1,
                        reason
                    },
                    3,
                    n
                ),
                RotationEffect::Rejected
            );
        }
        // ...but the stuck-slot watchdog is the *peers'* path: any
        // replica may clear a slot whose victim died mid-wipe.
        assert_eq!(
            st.apply(
                &RecoveryCommand::DeferWipe {
                    victim: 0,
                    epoch: 1,
                    reason: DeferReason::StuckSlot
                },
                3,
                n
            ),
            RotationEffect::Deferred {
                victim: 0,
                epoch: 1,
                reason: DeferReason::StuckSlot
            }
        );
    }

    #[test]
    fn deferral_advances_cursor_but_keeps_epoch() {
        let n = 4;
        let mut st = RotationState::default();
        st.apply(
            &RecoveryCommand::ScheduleWipe {
                victim: 0,
                epoch: 1,
            },
            0,
            n,
        );
        assert_eq!(
            st.apply(
                &RecoveryCommand::DeferWipe {
                    victim: 0,
                    epoch: 1,
                    reason: DeferReason::Stalled
                },
                0,
                n
            ),
            RotationEffect::Deferred {
                victim: 0,
                epoch: 1,
                reason: DeferReason::Stalled
            }
        );
        assert_eq!(st.deferrals, 1);
        assert_eq!(st.rounds_completed, 0);
        // The epoch advanced at schedule time and stays advanced; the
        // next slot belongs to the next replica at epoch 2.
        assert_eq!(st.epoch, 1);
        assert_eq!(st.expected_victim(n), 1);
    }

    /// Property: across arbitrary (adversarial) command schedules, the
    /// replicated state never has more than one active slot, the epoch
    /// is monotone and only moves on accepted schedules, closed slots
    /// are partitioned exactly into completions + deferrals, and two
    /// replicas applying the same stream stay byte-identical.
    #[test]
    fn fuzzed_schedules_preserve_safety_invariants() {
        for seed in 1..=64u64 {
            let mut rng = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let n = 3 + (rng.next() % 5) as usize; // 3..=7
            let mut a = RotationState::default();
            let mut b = RotationState::default();
            let mut accepted_schedules = 0u64;
            for _ in 0..512 {
                let victim = (rng.next() % (n as u64 + 2)) as u32; // incl. out-of-range
                let epoch = a.epoch + rng.next() % 3; // current-1..current+2 style drift
                let sender = (rng.next() % (n as u64 + 2)) as u32; // incl. forged origins
                let cmd = match rng.next() % 3 {
                    0 => RecoveryCommand::ScheduleWipe { victim, epoch },
                    1 => RecoveryCommand::WipeComplete { victim, epoch },
                    _ => RecoveryCommand::DeferWipe {
                        victim,
                        epoch,
                        reason: DeferReason::from_code((rng.next() % 3) as u8).unwrap(),
                    },
                };
                let before = a;
                let eff = a.apply(&cmd, sender, n);
                // Same stream, same state: replicas cannot diverge.
                assert_eq!(b.apply(&cmd, sender, n), eff);
                assert_eq!(a, b);
                // ≤ 1 active slot is structural (Option), but check the
                // transition discipline around it.
                match eff {
                    RotationEffect::Scheduled { victim, epoch } => {
                        accepted_schedules += 1;
                        assert!(before.active.is_none());
                        assert_eq!(epoch, before.epoch + 1);
                        assert_eq!(victim, before.expected_victim(n));
                        assert!((victim as usize) < n);
                        assert_eq!(sender, victim); // only the victim schedules itself
                        assert_eq!(a.active, Some((victim, epoch)));
                    }
                    RotationEffect::Completed { victim, .. } => {
                        assert!(before.active.is_some());
                        assert!(a.active.is_none());
                        assert_eq!(a.next_idx, before.next_idx + 1);
                        assert_eq!(sender, victim); // only the victim proves itself Live
                    }
                    RotationEffect::Deferred { victim, reason, .. } => {
                        assert!(before.active.is_some());
                        assert!(a.active.is_none());
                        assert_eq!(a.next_idx, before.next_idx + 1);
                        // Peers may only clear a stuck slot; self-assessed
                        // deferrals must come from the victim.
                        if reason != DeferReason::StuckSlot {
                            assert_eq!(sender, victim);
                        }
                    }
                    RotationEffect::Rejected => assert_eq!(a, before),
                }
                // Epoch is monotone and counts accepted schedules.
                assert!(a.epoch >= before.epoch);
                assert_eq!(a.epoch, accepted_schedules);
                // Closed slots partition into completions + deferrals.
                assert_eq!(
                    a.rounds_completed + a.deferrals + u64::from(a.active.is_some()),
                    accepted_schedules
                );
                // Round-trip through the snapshot codec at every step.
                let mut w = Writer::new();
                a.encode(&mut w);
                let buf = w.freeze();
                assert_eq!(RotationState::decode(&mut Reader::new(&buf)).unwrap(), a);
            }
        }
    }
}
