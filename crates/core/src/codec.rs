//! Wire-format trait for protocol messages.
//!
//! Every protocol message in the stack implements [`WireMessage`] and is
//! encoded with the hardened reader/writer from `ritas-transport` — all
//! inputs are assumed hostile (Byzantine peers can send arbitrary bytes).

use bytes::Bytes;
pub use ritas_transport::wire::{Reader, WireError, Writer};

/// A message with a binary wire representation.
pub trait WireMessage: Sized {
    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes a value from `r`, consuming exactly its encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated, oversized or invalid input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encodes `self` into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.freeze()
    }

    /// Decodes a value that must occupy the whole input.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on any decode failure, including trailing
    /// bytes after a structurally-valid prefix.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Pair(u32, Bytes);

    impl WireMessage for Pair {
        fn encode(&self, w: &mut Writer) {
            w.u32(self.0).bytes(&self.1);
        }

        fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
            Ok(Pair(r.u32("pair.a")?, r.bytes("pair.b")?))
        }
    }

    #[test]
    fn roundtrip() {
        let p = Pair(7, Bytes::from_static(b"xy"));
        assert_eq!(Pair::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let p = Pair(7, Bytes::from_static(b"xy"));
        let mut buf = p.to_bytes().to_vec();
        buf.push(0xff);
        assert!(matches!(
            Pair::from_bytes(&buf),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let p = Pair(7, Bytes::from_static(b"xy"));
        let buf = p.to_bytes();
        assert!(Pair::from_bytes(&buf[..buf.len() - 1]).is_err());
    }
}
