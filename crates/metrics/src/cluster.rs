//! Cross-replica trace correlation.
//!
//! Span paths mirror the deterministic control-block chain, so the same
//! protocol instance has the *same* path on every replica — `ab:0/m:1:3`
//! is message 3 of sender 1 everywhere. That makes n per-replica span
//! dumps joinable by path alone:
//!
//! * **Clock skew.** A span whose instance originates at replica `s`
//!   (an `m:{s}:{rbid}` message span, or an `rb:{s}:{k}`/`eb:{s}:{k}`
//!   broadcast) opens on `s` at send time and on every other replica at
//!   first-frame arrival. For replicas `a` → `b` the minimum observed
//!   `open_b − open_a` over `a`-origin instances is `skew(b−a) +
//!   min-delay ≥ skew(b−a)`; combining both directions bounds the skew
//!   in an interval whose midpoint is the estimate (the classic
//!   NTP-style symmetric-delay assumption). In the discrete-event
//!   simulator all replicas share one virtual clock, so estimates
//!   collapse to ≈ half the one-way delay asymmetry — a useful
//!   self-check.
//! * **Quorum arrivals.** Protocol layers annotate their spans with
//!   [`SpanAnnotation::QuorumMet`]/[`SpanAnnotation::RoundQuorum`]
//!   naming the peer whose message *closed* each quorum — the last
//!   arrival, i.e. the replica that delayed that step. Merging those
//!   rows across replicas answers "who is slowing the cluster down".
//! * **Coin rounds.** BC spans carry `round-entered`/`coin-flipped`
//!   annotations; their distribution across the cluster is the key
//!   diagnostic for the randomized-agreement layer.

use crate::{unpack_round_quorum, Layer, SpanAnnotation, SpanNote, SpanRecord};
use std::collections::{BTreeMap, HashMap};

/// One replica's span dump, tagged with its process id.
#[derive(Debug, Clone)]
pub struct ReplicaTrace {
    /// The replica (process id / dump index).
    pub replica: u32,
    /// Its retained spans.
    pub spans: Vec<SpanRecord>,
}

/// The replica a span path's instance originates at, when the path
/// encodes one: `…/m:{sender}:{rbid}` message spans and standalone
/// `rb:{sender}:{k}` / `eb:{sender}:{k}` broadcast instances.
pub fn span_origin(path: &str) -> Option<u32> {
    let leaf_origin = |seg: &str| -> Option<u32> {
        let rest = seg
            .strip_prefix("m:")
            .or_else(|| seg.strip_prefix("rb:"))
            .or_else(|| seg.strip_prefix("eb:"))?;
        rest.split(':').next()?.parse().ok()
    };
    path.split('/').find_map(leaf_origin)
}

/// One replica's estimated clock offset relative to replica 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewEstimate {
    /// The replica.
    pub replica: u32,
    /// Estimated `clock(replica) − clock(reference)` in ns (midpoint of
    /// `[lo, hi]`). 0 when no matched spans bound it.
    pub offset_ns: i64,
    /// Lower bound of the skew interval.
    pub lo: i64,
    /// Upper bound of the skew interval.
    pub hi: i64,
    /// Matched span pairs backing the estimate (both directions).
    pub samples: u64,
}

/// Per-replica open times of origin-attributable spans:
/// `path → open` for spans originated at `origin`.
fn origin_opens(trace: &ReplicaTrace, origin: u32) -> HashMap<&str, u64> {
    trace
        .spans
        .iter()
        .filter(|s| span_origin(&s.path) == Some(origin))
        .map(|s| (s.path.as_str(), s.open))
        .collect()
}

/// Estimates each replica's clock offset relative to `traces[0]` from
/// matched send/receive span opens. Replicas with no matched spans get
/// a zero estimate with `samples == 0`.
pub fn estimate_skews(traces: &[ReplicaTrace]) -> Vec<SkewEstimate> {
    let Some(reference) = traces.first() else {
        return Vec::new();
    };
    let mut out = vec![SkewEstimate {
        replica: reference.replica,
        offset_ns: 0,
        lo: 0,
        hi: 0,
        samples: 0,
    }];
    for t in &traces[1..] {
        // Direction ref→t: spans originated at the reference, observed
        // on t. min(open_t − open_ref) = skew(t) + min delay ≥ skew(t),
        // so it upper-bounds nothing and lower… — it bounds skew(t)
        // from above only via the reverse direction; delays are ≥ 0, so
        //   skew(t) ≤ min over ref-origin spans  (hi)
        //   skew(t) ≥ −min over t-origin spans   (lo)
        let mut hi: Option<i64> = None;
        let mut lo: Option<i64> = None;
        let mut samples = 0u64;
        let ref_origin = origin_opens(reference, reference.replica);
        let t_view_of_ref = origin_opens(t, reference.replica);
        for (path, &open_ref) in &ref_origin {
            if let Some(&open_t) = t_view_of_ref.get(path) {
                let d = open_t as i64 - open_ref as i64;
                hi = Some(hi.map_or(d, |h: i64| h.min(d)));
                samples += 1;
            }
        }
        let t_origin = origin_opens(t, t.replica);
        let ref_view_of_t = origin_opens(reference, t.replica);
        for (path, &open_t) in &t_origin {
            if let Some(&open_ref) = ref_view_of_t.get(path) {
                let d = open_ref as i64 - open_t as i64;
                lo = Some(lo.map_or(-d, |l: i64| l.max(-d)));
                samples += 1;
            }
        }
        let (lo, hi) = match (lo, hi) {
            (Some(lo), Some(hi)) => (lo.min(hi), hi.max(lo)),
            (Some(lo), None) => (lo, lo),
            (None, Some(hi)) => (hi, hi),
            (None, None) => (0, 0),
        };
        out.push(SkewEstimate {
            replica: t.replica,
            offset_ns: lo + (hi - lo) / 2,
            lo,
            hi,
            samples,
        });
    }
    out
}

/// One quorum completion observed on one replica, skew-corrected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumRow {
    /// The instance's span path.
    pub path: String,
    /// The replica that observed the quorum complete.
    pub observer: u32,
    /// The BC round the quorum concluded, `None` for broadcast quorums.
    pub round: Option<u32>,
    /// The peer whose message closed the quorum (the last arrival).
    pub completed_by: u32,
    /// Skew-corrected observation time (reference-replica ns).
    pub t: i64,
}

/// Extracts every quorum-arrival annotation across the cluster,
/// skew-corrected onto the reference clock and sorted by time.
pub fn quorum_rows(traces: &[ReplicaTrace], skews: &[SkewEstimate]) -> Vec<QuorumRow> {
    let offset: HashMap<u32, i64> = skews.iter().map(|s| (s.replica, s.offset_ns)).collect();
    let mut out = Vec::new();
    for t in traces {
        let off = offset.get(&t.replica).copied().unwrap_or(0);
        for s in &t.spans {
            for n in &s.annotations {
                let (round, completed_by) = match n.kind {
                    SpanAnnotation::QuorumMet => (None, n.value as u32),
                    SpanAnnotation::RoundQuorum => {
                        let (round, origin) = unpack_round_quorum(n.value);
                        (Some(round), origin)
                    }
                    _ => continue,
                };
                out.push(QuorumRow {
                    path: s.path.clone(),
                    observer: t.replica,
                    round,
                    completed_by,
                    t: n.t as i64 - off,
                });
            }
        }
    }
    out.sort_by(|a, b| a.t.cmp(&b.t).then_with(|| a.path.cmp(&b.path)));
    out
}

/// How often each peer was the quorum-closing (= last-arriving) process
/// — the cluster's laggard ranking.
pub fn laggard_counts(rows: &[QuorumRow]) -> BTreeMap<u32, u64> {
    let mut out = BTreeMap::new();
    for r in rows {
        *out.entry(r.completed_by).or_insert(0) += 1;
    }
    out
}

/// Cluster-wide randomized-agreement diagnostics from BC spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoinReport {
    /// Decided BC instances by rounds needed (`rounds → instances`).
    pub rounds_histogram: BTreeMap<u32, u64>,
    /// Total coin flips observed.
    pub coin_flips: u64,
    /// Coin flips that came up 1.
    pub coin_ones: u64,
}

/// Aggregates the coin-round distribution over every closed BC span in
/// the cluster (each replica's observation of an instance counts once —
/// correct replicas agree on the round count, so divergence here is
/// itself a finding).
pub fn coin_distribution(traces: &[ReplicaTrace]) -> CoinReport {
    let mut report = CoinReport::default();
    for t in traces {
        for s in &t.spans {
            if s.layer != Layer::Bc || s.close.is_none() {
                continue;
            }
            let mut max_round = None;
            for n in &s.annotations {
                match n.kind {
                    SpanAnnotation::RoundEntered => {
                        let r = n.value as u32;
                        max_round = Some(max_round.map_or(r, |m: u32| m.max(r)));
                    }
                    SpanAnnotation::CoinFlipped => {
                        report.coin_flips += 1;
                        report.coin_ones += n.value & 1;
                    }
                    _ => {}
                }
            }
            if let Some(r) = max_round {
                *report.rounds_histogram.entry(r + 1).or_insert(0) += 1;
            }
        }
    }
    report
}

/// One event of the merged cluster timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Skew-corrected time (reference-replica ns).
    pub t: i64,
    /// The observing replica.
    pub replica: u32,
    /// The span path.
    pub path: String,
    /// The owning layer.
    pub layer: Layer,
    /// What happened at `t`.
    pub what: TimelineWhat,
}

/// The event kinds of a [`TimelineEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineWhat {
    /// The span opened (instance created / message sent or first seen).
    Open,
    /// The span closed (delivered / decided).
    Close,
    /// An annotation fired.
    Note(SpanNote),
}

/// Merges every replica's span events into one causal timeline on the
/// reference clock: opens, closes and annotations, sorted by corrected
/// time (ties: replica, then path).
pub fn merge_timeline(traces: &[ReplicaTrace], skews: &[SkewEstimate]) -> Vec<TimelineEvent> {
    let offset: HashMap<u32, i64> = skews.iter().map(|s| (s.replica, s.offset_ns)).collect();
    let mut out = Vec::new();
    for t in traces {
        let off = offset.get(&t.replica).copied().unwrap_or(0);
        for s in &t.spans {
            out.push(TimelineEvent {
                t: s.open as i64 - off,
                replica: t.replica,
                path: s.path.clone(),
                layer: s.layer,
                what: TimelineWhat::Open,
            });
            for n in &s.annotations {
                out.push(TimelineEvent {
                    t: n.t as i64 - off,
                    replica: t.replica,
                    path: s.path.clone(),
                    layer: s.layer,
                    what: TimelineWhat::Note(*n),
                });
            }
            if let Some(close) = s.close {
                out.push(TimelineEvent {
                    t: close as i64 - off,
                    replica: t.replica,
                    path: s.path.clone(),
                    layer: s.layer,
                    what: TimelineWhat::Close,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        a.t.cmp(&b.t)
            .then_with(|| a.replica.cmp(&b.replica))
            .then_with(|| a.path.cmp(&b.path))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_round_quorum;

    fn span(path: &str, layer: Layer, open: u64, close: Option<u64>) -> SpanRecord {
        SpanRecord {
            path: path.into(),
            layer,
            open,
            close,
            annotations: Vec::new(),
        }
    }

    fn note(s: &mut SpanRecord, t: u64, kind: SpanAnnotation, value: u64) {
        s.annotations.push(SpanNote { t, kind, value });
    }

    #[test]
    fn span_origin_parses_message_and_broadcast_paths() {
        assert_eq!(span_origin("ab:0/m:1:3"), Some(1));
        assert_eq!(span_origin("ab:0/m:2:7/rb"), Some(2));
        assert_eq!(span_origin("rb:3:0"), Some(3));
        assert_eq!(span_origin("eb:0:5"), Some(0));
        assert_eq!(span_origin("ab:0/r:4"), None);
        assert_eq!(span_origin("bc:9"), None);
        assert_eq!(span_origin("svc:12:1"), None);
    }

    #[test]
    fn skew_recovered_from_symmetric_delays() {
        // Replica 1's clock runs 1000 ns ahead; one-way delay 50 ns in
        // both directions. The midpoint estimator recovers the skew
        // exactly.
        let r0 = ReplicaTrace {
            replica: 0,
            spans: vec![
                span("ab:0/m:0:0", Layer::Ab, 100, Some(400)), // own send at 100
                span("ab:0/m:1:0", Layer::Ab, 1200 - 1000 + 50, Some(900)), // peer's send seen delay 50 later (their clock 1000 ahead): their t=1200 → our 250
            ],
        };
        let r1 = ReplicaTrace {
            replica: 1,
            spans: vec![
                span("ab:0/m:0:0", Layer::Ab, 100 + 1000 + 50, Some(1400)), // ref's send arrives
                span("ab:0/m:1:0", Layer::Ab, 1200, Some(1900)), // own send at their 1200
            ],
        };
        let skews = estimate_skews(&[r0, r1]);
        assert_eq!(skews[0].offset_ns, 0);
        assert_eq!(skews[1].replica, 1);
        assert_eq!(skews[1].offset_ns, 1000);
        assert_eq!(skews[1].samples, 2);
        assert!(skews[1].lo <= 1000 && 1000 <= skews[1].hi);
    }

    #[test]
    fn skew_defaults_to_zero_without_matches() {
        let r0 = ReplicaTrace {
            replica: 0,
            spans: vec![span("ab:0/m:0:0", Layer::Ab, 10, None)],
        };
        let r1 = ReplicaTrace {
            replica: 1,
            spans: vec![span("bc:1", Layer::Bc, 20, None)],
        };
        let skews = estimate_skews(&[r0, r1]);
        assert_eq!(skews[1].offset_ns, 0);
        assert_eq!(skews[1].samples, 0);
    }

    #[test]
    fn quorum_rows_extract_and_correct_for_skew() {
        let mut s0 = span("ab:0/m:0:0/rb", Layer::Rb, 100, Some(300));
        note(&mut s0, 200, SpanAnnotation::QuorumMet, 2);
        let mut s1 = span("ab:0/r:0/mvc/bc", Layer::Bc, 1100, Some(1400));
        note(
            &mut s1,
            1300,
            SpanAnnotation::RoundQuorum,
            pack_round_quorum(0, 3),
        );
        let traces = [
            ReplicaTrace {
                replica: 0,
                spans: vec![s0],
            },
            ReplicaTrace {
                replica: 1,
                spans: vec![s1],
            },
        ];
        let skews = vec![
            SkewEstimate {
                replica: 0,
                offset_ns: 0,
                lo: 0,
                hi: 0,
                samples: 1,
            },
            SkewEstimate {
                replica: 1,
                offset_ns: 1000,
                lo: 1000,
                hi: 1000,
                samples: 1,
            },
        ];
        let rows = quorum_rows(&traces, &skews);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].completed_by, 2);
        assert_eq!(rows[0].round, None);
        assert_eq!(rows[0].t, 200);
        assert_eq!(rows[1].completed_by, 3);
        assert_eq!(rows[1].round, Some(0));
        assert_eq!(rows[1].t, 300); // 1300 − 1000 skew
        let laggards = laggard_counts(&rows);
        assert_eq!(laggards.get(&2), Some(&1));
        assert_eq!(laggards.get(&3), Some(&1));
    }

    #[test]
    fn coin_distribution_counts_rounds_and_flips() {
        let mut bc = span("ab:0/r:0/mvc/bc", Layer::Bc, 0, Some(100));
        note(&mut bc, 10, SpanAnnotation::RoundEntered, 0);
        note(&mut bc, 40, SpanAnnotation::CoinFlipped, 1);
        note(&mut bc, 50, SpanAnnotation::RoundEntered, 1);
        note(&mut bc, 90, SpanAnnotation::CoinFlipped, 0);
        let open_bc = span("bc:7", Layer::Bc, 0, None); // open: excluded
        let traces = [ReplicaTrace {
            replica: 0,
            spans: vec![bc, open_bc],
        }];
        let report = coin_distribution(&traces);
        assert_eq!(report.rounds_histogram.get(&2), Some(&1));
        assert_eq!(report.coin_flips, 2);
        assert_eq!(report.coin_ones, 1);
    }

    #[test]
    fn timeline_is_sorted_on_the_corrected_clock() {
        let traces = [
            ReplicaTrace {
                replica: 0,
                spans: vec![span("ab:0/m:0:0", Layer::Ab, 500, Some(900))],
            },
            ReplicaTrace {
                replica: 1,
                spans: vec![span("ab:0/m:0:0", Layer::Ab, 1600, Some(1800))],
            },
        ];
        let skews = estimate_skews(&traces); // r1 sees r0's span 1100 later → hi=lo=1100
        let tl = merge_timeline(&traces, &skews);
        assert_eq!(tl.len(), 4);
        assert!(tl.windows(2).all(|w| w[0].t <= w[1].t));
        assert_eq!(tl[0].what, TimelineWhat::Open);
        assert_eq!(tl[0].replica, 0);
    }
}
