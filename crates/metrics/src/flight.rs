//! Flight recorder: a bounded binary ring of protocol events kept per
//! replica and dumped to disk on panic, fatal error, or explicit
//! trigger, so a failed chaos or adversary run leaves a post-mortem
//! artifact instead of nothing.
//!
//! The format is deliberately dumb: a fixed-size little-endian record
//! per event behind a small header, so a dump written by a dying
//! process needs no allocation-heavy serialization and a truncated file
//! still parses up to the cut.
//!
//! ```text
//! header:  magic "RFR1" | u16 version | u16 record size | u32 count
//! record:  u64 t | u8 kind | u32 peer | u64 a | u64 b   (29 bytes)
//! ```

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Default number of events the ring retains (oldest evicted first).
pub const FLIGHT_CAPACITY: usize = 16384;

/// Dump file magic.
pub const FLIGHT_MAGIC: [u8; 4] = *b"RFR1";

/// Dump format version.
pub const FLIGHT_VERSION: u16 = 1;

/// Size of one encoded record in bytes.
pub const FLIGHT_RECORD_BYTES: usize = 29;

/// What happened. The payload words `a`/`b` are kind-specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A wire frame left for `peer` (`u32::MAX` = all); `a` = FNV-1a
    /// digest of the frame, `b` = length.
    FrameOut,
    /// A wire frame arrived from `peer`; `a` = digest, `b` = length.
    FrameIn,
    /// An atomic-broadcast delivery; `peer` = sender, `a` = rbid.
    Deliver,
    /// A batch left the broadcast-side queue; `a` = commands in the
    /// batch, `b` = flush-reason code (0 size, 1 age, 2 idle).
    Flush,
    /// A point-to-point link came up; `a` = session epoch.
    LinkUp,
    /// A point-to-point link went down; `a` = session epoch.
    LinkDown,
    /// The progress watchdog flagged a stall; `a` = outstanding work
    /// items, `b` = budget in ns.
    Stall,
    /// Byzantine evidence was attributed to `peer`; `a` = the
    /// [`crate::SuspicionKind`] index.
    Suspicion,
    /// Driver-specific marker (tests, shutdown notes…).
    Marker,
    /// A recovery-pipeline milestone (snapshot taken, rejoin phase
    /// change, transfer abort); `a` = milestone code (0 snapshot,
    /// 1 syncing, 2 catching-up, 3 live, 4 aborted), `b` = the applied
    /// sequence number involved.
    Recovery,
}

impl FlightKind {
    /// Wire code of this kind.
    pub fn code(self) -> u8 {
        match self {
            FlightKind::FrameOut => 1,
            FlightKind::FrameIn => 2,
            FlightKind::Deliver => 3,
            FlightKind::Flush => 4,
            FlightKind::LinkUp => 5,
            FlightKind::LinkDown => 6,
            FlightKind::Stall => 7,
            FlightKind::Suspicion => 8,
            FlightKind::Marker => 9,
            FlightKind::Recovery => 10,
        }
    }

    /// Inverse of [`FlightKind::code`].
    pub fn from_code(code: u8) -> Option<FlightKind> {
        Some(match code {
            1 => FlightKind::FrameOut,
            2 => FlightKind::FrameIn,
            3 => FlightKind::Deliver,
            4 => FlightKind::Flush,
            5 => FlightKind::LinkUp,
            6 => FlightKind::LinkDown,
            7 => FlightKind::Stall,
            8 => FlightKind::Suspicion,
            9 => FlightKind::Marker,
            10 => FlightKind::Recovery,
            _ => return None,
        })
    }

    /// Stable name used in text renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::FrameOut => "frame-out",
            FlightKind::FrameIn => "frame-in",
            FlightKind::Deliver => "deliver",
            FlightKind::Flush => "flush",
            FlightKind::LinkUp => "link-up",
            FlightKind::LinkDown => "link-down",
            FlightKind::Stall => "stall",
            FlightKind::Suspicion => "suspicion",
            FlightKind::Marker => "marker",
            FlightKind::Recovery => "recovery",
        }
    }
}

/// One recorded protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Driver timestamp (wall ns on the node runtime, virtual ns in the
    /// simulator).
    pub t: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The peer involved (`u32::MAX` when not peer-specific).
    pub peer: u32,
    /// Kind-specific payload word.
    pub a: u64,
    /// Kind-specific payload word.
    pub b: u64,
}

/// The bounded in-memory ring. Recording is one short mutex hold; the
/// ring keeps the most recent [`FLIGHT_CAPACITY`] events.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<FlightEvent>>,
    capacity: usize,
    enabled: AtomicBool,
    recorded: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
            capacity,
            enabled: AtomicBool::new(true),
            recorded: AtomicU64::new(0),
        }
    }

    /// Enables or disables recording (dumping still works while
    /// disabled — the ring just stops moving).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Appends one event, evicting the oldest past capacity.
    pub fn record(&self, event: FlightEvent) {
        if !self.enabled() {
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }

    /// Encodes the retained ring into the binary dump format.
    pub fn encode(&self) -> Vec<u8> {
        encode(&self.events())
    }
}

/// Encodes events into the binary dump format.
pub fn encode(events: &[FlightEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + events.len() * FLIGHT_RECORD_BYTES);
    out.extend_from_slice(&FLIGHT_MAGIC);
    out.extend_from_slice(&FLIGHT_VERSION.to_le_bytes());
    out.extend_from_slice(&(FLIGHT_RECORD_BYTES as u16).to_le_bytes());
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for e in events {
        out.extend_from_slice(&e.t.to_le_bytes());
        out.push(e.kind.code());
        out.extend_from_slice(&e.peer.to_le_bytes());
        out.extend_from_slice(&e.a.to_le_bytes());
        out.extend_from_slice(&e.b.to_le_bytes());
    }
    out
}

/// Parses a binary dump. A file truncated mid-record (the process died
/// while writing) yields the events before the cut rather than an
/// error; a wrong magic, version, or record size is an error.
///
/// # Errors
///
/// A human-readable message on a malformed header or an unknown event
/// kind.
pub fn parse(bytes: &[u8]) -> Result<Vec<FlightEvent>, String> {
    if bytes.len() < 12 {
        return Err("dump shorter than the 12-byte header".into());
    }
    if bytes[0..4] != FLIGHT_MAGIC {
        return Err("bad magic (not a flight-recorder dump)".into());
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FLIGHT_VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let record = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
    if record != FLIGHT_RECORD_BYTES {
        return Err(format!("unexpected record size {record}"));
    }
    let count = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let mut out = Vec::new();
    let body = &bytes[12..];
    for i in 0..count {
        let Some(rec) = body.get(i * record..(i + 1) * record) else {
            break; // truncated tail: keep what we have
        };
        let word = |off: usize| u64::from_le_bytes(rec[off..off + 8].try_into().expect("8 bytes"));
        let kind = FlightKind::from_code(rec[8])
            .ok_or_else(|| format!("unknown event kind {}", rec[8]))?;
        out.push(FlightEvent {
            t: word(0),
            kind,
            peer: u32::from_le_bytes(rec[9..13].try_into().expect("4 bytes")),
            a: word(13),
            b: word(21),
        });
    }
    Ok(out)
}

/// Renders parsed events as one line each (`t kind peer a b`).
pub fn to_text(events: &[FlightEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for e in events {
        let peer = if e.peer == u32::MAX {
            "*".to_string()
        } else {
            e.peer.to_string()
        };
        let _ = writeln!(
            out,
            "{} {} peer={} a={:#x} b={}",
            e.t,
            e.kind.as_str(),
            peer,
            e.a,
            e.b
        );
    }
    out
}

/// FNV-1a over `bytes` — the cheap frame digest recorded with
/// [`FlightKind::FrameIn`]/[`FlightKind::FrameOut`] events, good enough
/// to match a frame across two replicas' dumps.
pub fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Panic-dump registration
// ---------------------------------------------------------------------------

struct Registered {
    dir: PathBuf,
    tag: String,
    metrics: crate::Metrics,
}

fn registry() -> &'static Mutex<Vec<Registered>> {
    static REGISTRY: OnceLock<Mutex<Vec<Registered>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers `metrics` for post-mortem dumping: on any panic in the
/// process (the hook chains to the previous one) — or an explicit
/// [`dump_registered`] call — its flight ring is written to
/// `{dir}/flight-{tag}.bin`. Registered handles are kept alive for the
/// process lifetime; re-registering a tag replaces the previous entry.
pub fn register_dump(dir: impl Into<PathBuf>, tag: impl Into<String>, metrics: crate::Metrics) {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = dump_registered_inner();
            prev(info);
        }));
    });
    let (dir, tag) = (dir.into(), tag.into());
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.retain(|r| r.tag != tag);
    reg.push(Registered { dir, tag, metrics });
}

/// Writes every registered registry's flight ring to its dump file now
/// (fatal-error and end-of-failed-run paths). Returns the paths
/// written; write failures skip that file.
pub fn dump_registered() -> Vec<PathBuf> {
    dump_registered_inner()
}

fn dump_registered_inner() -> Vec<PathBuf> {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let mut written = Vec::new();
    for r in reg.iter() {
        let path = r.dir.join(format!("flight-{}.bin", r.tag));
        if write_dump(&path, &r.metrics.flight().encode()).is_ok() {
            written.push(path);
        }
    }
    written
}

fn write_dump(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: FlightKind, peer: u32, a: u64, b: u64) -> FlightEvent {
        FlightEvent {
            t,
            kind,
            peer,
            a,
            b,
        }
    }

    #[test]
    fn encode_parse_roundtrip() {
        let events = vec![
            ev(1, FlightKind::FrameIn, 2, 0xdead_beef, 128),
            ev(2, FlightKind::FrameOut, u32::MAX, 0xcafe, 64),
            ev(3, FlightKind::Stall, 0, 5, 1_000_000),
            ev(4, FlightKind::Suspicion, 3, 2, 0),
        ];
        let parsed = parse(&encode(&events)).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn truncated_dump_parses_prefix() {
        let events = vec![
            ev(1, FlightKind::Deliver, 0, 7, 0),
            ev(2, FlightKind::Deliver, 1, 8, 0),
        ];
        let mut bytes = encode(&events);
        bytes.truncate(12 + FLIGHT_RECORD_BYTES + 3); // cut inside record 2
        assert_eq!(parse(&bytes).unwrap(), events[..1]);
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let bytes = encode(&[]);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(parse(&bad).unwrap_err().contains("magic"));
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(parse(&bad).unwrap_err().contains("version"));
        assert!(parse(&bytes[..8]).unwrap_err().contains("header"));
    }

    #[test]
    fn ring_is_bounded_and_disable_stops_recording() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            rec.record(ev(i, FlightKind::Marker, 0, i, 0));
        }
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].t, 6);
        assert_eq!(rec.recorded(), 10);
        rec.set_enabled(false);
        rec.record(ev(99, FlightKind::Marker, 0, 0, 0));
        assert_eq!(rec.events().len(), 4);
        assert_eq!(rec.recorded(), 10);
    }

    #[test]
    fn text_rendering_names_kinds() {
        let text = to_text(&[ev(5, FlightKind::LinkDown, 1, 2, 0)]);
        assert!(text.contains("link-down"));
        assert!(text.contains("peer=1"));
    }

    #[test]
    fn digest_differs_on_content() {
        assert_ne!(digest(b"frame-a"), digest(b"frame-b"));
        assert_eq!(digest(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn panic_dump_writes_parseable_file() {
        let dir = std::env::temp_dir().join(format!("ritas-flight-test-{}", std::process::id()));
        let m = crate::Metrics::new();
        m.set_time(42);
        m.flight_record(FlightKind::Marker, 7, 1, 2);
        register_dump(&dir, "unit", m);
        let result = std::panic::catch_unwind(|| panic!("induced"));
        assert!(result.is_err());
        let path = dir.join("flight-unit.bin");
        let bytes = std::fs::read(&path).expect("panic hook wrote the dump");
        let events = parse(&bytes).unwrap();
        assert!(events
            .iter()
            .any(|e| e.kind == FlightKind::Marker && e.peer == 7 && e.t == 42));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
