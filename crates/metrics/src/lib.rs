//! Protocol metrics and event tracing for the RITAS stack.
//!
//! The paper's whole evaluation (§4) is built on per-layer measurement —
//! latency and throughput per protocol, rounds per consensus instance,
//! messages per broadcast. This crate is the reproduction's counterpart:
//! a zero-dependency, thread-safe registry of counters, gauges and
//! fixed-bucket histograms, plus a bounded structured event-trace ring.
//!
//! Design rules:
//!
//! * **Cheap by default.** Counters and gauges are single relaxed
//!   atomics; an unobserved `Metrics` handle costs one `Arc` clone per
//!   protocol instance and a few atomic adds per message.
//! * **Static registry.** Every metric is a named field, not a
//!   string-keyed map — no hashing on the hot path, and the snapshot
//!   schema is stable by construction.
//! * **Driver-injected time.** Protocol state machines are sans-io and
//!   have no clock; drivers (the threaded node, the discrete-event
//!   simulator) stamp the registry clock via [`Metrics::set_time`], so
//!   trace timestamps are wall nanoseconds in production and virtual
//!   nanoseconds in simulation.
//!
//! A [`MetricsSnapshot`] freezes everything into plain data with stable
//! text and JSON renderings, so tests and fault-injection harnesses can
//! assert on protocol-level invariants (e.g. "the crashed victim added
//! zero consensus rounds for the correct majority") instead of timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

pub mod cluster;
pub mod flight;

pub use flight::{FlightEvent, FlightKind, FlightRecorder};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value instrument (queue depths, live instance counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is above the current one.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` counts values whose
/// power-of-two magnitude is `i` (bucket upper bound `2^i − 1`…), with
/// the last bucket absorbing everything larger.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket histogram with power-of-two bucket bounds.
///
/// Bucket `i` counts values `v` with `2^(i−1) ≤ v < 2^i` (bucket 0
/// counts `v == 0`), which spans `[0, 2^39)` — enough for nanosecond
/// latencies up to ~9 minutes and any size/count this stack produces.
/// Recording is two relaxed atomic adds plus an atomic max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket that counts `v`.
    pub fn bucket_index(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`None` for the overflow
    /// bucket).
    pub fn bucket_bound(i: usize) -> Option<u64> {
        if i + 1 >= HISTOGRAM_BUCKETS {
            None
        } else {
            Some((1u64 << i) - 1)
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Freezes the histogram into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

/// Frozen histogram data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram::bucket_bound`]).
    pub buckets: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`0.0 < p <= 100.0`) as the inclusive upper
    /// bound of the bucket containing that rank — the resolution is one
    /// power-of-two bucket, which is what the fixed-bucket design can
    /// honestly report. Returns `max` for ranks landing in the overflow
    /// bucket, 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report a bucket bound above the recorded max.
                return Histogram::bucket_bound(i).unwrap_or(self.max).min(self.max);
            }
        }
        self.max
    }
}

/// The stack layer an event or metric belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Reliable channels (§2.1): frames, bytes, MAC verdicts.
    Transport,
    /// Reliable broadcast (§2.3, Bracha).
    Rb,
    /// Echo broadcast (§2.3, Reiter / Toueg).
    Eb,
    /// Binary consensus (§2.4, Bracha).
    Bc,
    /// Multi-valued consensus (§2.5).
    Mvc,
    /// Vector consensus (§2.6).
    Vc,
    /// Atomic broadcast (§2.7).
    Ab,
    /// The stack frame router and out-of-context buffers (§3.4).
    Stack,
    /// The threaded node runtime (§3).
    Node,
    /// The client-facing service tier (session front-end, reply voting).
    Service,
}

impl Layer {
    /// Stable lowercase name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Transport => "transport",
            Layer::Rb => "rb",
            Layer::Eb => "eb",
            Layer::Bc => "bc",
            Layer::Mvc => "mvc",
            Layer::Vc => "vc",
            Layer::Ab => "ab",
            Layer::Stack => "stack",
            Layer::Node => "node",
            Layer::Service => "service",
        }
    }

    /// Inverse of [`Layer::as_str`] (span-dump parsing).
    pub fn parse(s: &str) -> Option<Layer> {
        Some(match s {
            "transport" => Layer::Transport,
            "rb" => Layer::Rb,
            "eb" => Layer::Eb,
            "bc" => Layer::Bc,
            "mvc" => Layer::Mvc,
            "vc" => Layer::Vc,
            "ab" => Layer::Ab,
            "stack" => Layer::Stack,
            "node" => Layer::Node,
            "service" => Layer::Service,
            _ => return None,
        })
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (records causal order even when the
    /// injected clock stands still).
    pub seq: u64,
    /// Driver-injected timestamp (wall ns for the node runtime, virtual
    /// ns in simulation, 0 when no driver stamps the clock).
    pub timestamp: u64,
    /// Which protocol instance emitted the event (stable debug key).
    pub instance_id: String,
    /// The emitting layer.
    pub layer: Layer,
    /// Event kind, e.g. `"deliver"`, `"coin-flip"`, `"decide"`.
    pub kind: &'static str,
    /// Protocol round, when the layer has rounds (0 otherwise).
    pub round: u32,
}

/// Default capacity of the trace ring.
pub const TRACE_CAPACITY: usize = 1024;

#[derive(Debug)]
struct TraceRing {
    events: Mutex<std::collections::VecDeque<TraceEvent>>,
    capacity: usize,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        TraceRing {
            events: Mutex::new(std::collections::VecDeque::with_capacity(capacity.min(64))),
            capacity,
        }
    }

    fn push(&self, event: TraceEvent) {
        let mut q = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event);
    }

    fn to_vec(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Spans: per-instance open/close intervals along the control-block chain
// ---------------------------------------------------------------------------

/// Maximum number of spans the registry retains (closed spans are evicted
/// oldest-first past this bound; opens past it are dropped and counted).
pub const SPAN_CAPACITY: usize = 4096;

/// Maximum depth of a span path (`/`-separated segments); deeper opens
/// are dropped and counted.
pub const SPAN_MAX_DEPTH: usize = 8;

/// Maximum annotations retained per span (excess is dropped silently —
/// a runaway BC already shows up in `bc_rounds`).
pub const SPAN_MAX_ANNOTATIONS: usize = 64;

/// A typed span annotation: a protocol-phase event inside an instance's
/// lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanAnnotation {
    /// A binary consensus instance entered round `value`.
    RoundEntered,
    /// A coin was flipped; `value` is the coin's bit.
    CoinFlipped,
    /// A consensus VECT quorum was collected; `value` counts entries.
    VectCollected,
    /// A generic phase transition; `value` is a layer-specific code.
    Phase,
    /// A point-to-point link lost its connection; `value` is the link's
    /// session epoch at the time of the outage. The owning span closes
    /// when the session-resume handshake completes.
    LinkOutage,
    /// A broadcast quorum completed; `value` is the peer whose message
    /// closed the quorum — the last arrival, i.e. the process that
    /// delayed this step of the critical path.
    QuorumMet,
    /// A binary consensus round's concluding quorum completed; `value`
    /// packs `(round << 8) | origin`, where `origin` is the peer whose
    /// message closed the round (see [`pack_round_quorum`]).
    RoundQuorum,
}

/// Packs a BC round number and the quorum-closing origin into one
/// [`SpanAnnotation::RoundQuorum`] value.
pub fn pack_round_quorum(round: u32, origin: u32) -> u64 {
    (u64::from(round) << 8) | u64::from(origin & 0xFF)
}

/// Inverse of [`pack_round_quorum`]: `(round, origin)`.
pub fn unpack_round_quorum(value: u64) -> (u32, u32) {
    ((value >> 8) as u32, (value & 0xFF) as u32)
}

impl SpanAnnotation {
    /// Stable kebab-case name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanAnnotation::RoundEntered => "round-entered",
            SpanAnnotation::CoinFlipped => "coin-flipped",
            SpanAnnotation::VectCollected => "vect-collected",
            SpanAnnotation::Phase => "phase",
            SpanAnnotation::LinkOutage => "link-outage",
            SpanAnnotation::QuorumMet => "quorum-met",
            SpanAnnotation::RoundQuorum => "round-quorum",
        }
    }

    /// Inverse of [`SpanAnnotation::as_str`].
    pub fn parse(s: &str) -> Option<SpanAnnotation> {
        Some(match s {
            "round-entered" => SpanAnnotation::RoundEntered,
            "coin-flipped" => SpanAnnotation::CoinFlipped,
            "vect-collected" => SpanAnnotation::VectCollected,
            "phase" => SpanAnnotation::Phase,
            "link-outage" => SpanAnnotation::LinkOutage,
            "quorum-met" => SpanAnnotation::QuorumMet,
            "round-quorum" => SpanAnnotation::RoundQuorum,
            _ => return None,
        })
    }
}

/// One timestamped annotation on a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanNote {
    /// Driver timestamp (clamped to ≥ the span's open time).
    pub t: u64,
    /// What happened.
    pub kind: SpanAnnotation,
    /// Annotation-specific value (round number, coin bit, count…).
    pub value: u64,
}

/// One protocol-instance span. Parent linkage is implicit in the path:
/// `ab:0/r:3/mvc/bc` is a child of `ab:0/r:3/mvc`, mirroring the §3
/// control-block chain (AB → MVC → BC → RB/EB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// `/`-separated instance path, e.g. `ab:0/m:1:0/rb`.
    pub path: String,
    /// The layer that owns the instance.
    pub layer: Layer,
    /// Driver time at open (wall ns on the node runtime, virtual ns in
    /// the simulator).
    pub open: u64,
    /// Driver time at close; `None` while the instance is still live.
    /// Clamped to ≥ `open`, so durations are never negative even when
    /// the injected clock misbehaves.
    pub close: Option<u64>,
    /// Phase annotations, in arrival order.
    pub annotations: Vec<SpanNote>,
}

impl SpanRecord {
    /// The parent path, `None` for roots.
    pub fn parent(&self) -> Option<&str> {
        self.path.rsplit_once('/').map(|(p, _)| p)
    }

    /// The final path segment (the instance's local name).
    pub fn leaf(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// Path depth in segments.
    pub fn depth(&self) -> usize {
        self.path.split('/').count()
    }

    /// Close − open, `None` while open.
    pub fn duration(&self) -> Option<u64> {
        self.close.map(|c| c - self.open)
    }

    /// Renders the span as one JSON object (one JSONL line, no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.path.len());
        let _ = write!(
            out,
            "{{\"path\":\"{}\",\"layer\":\"{}\",\"open\":{},\"close\":",
            escape_json(&self.path),
            self.layer.as_str(),
            self.open
        );
        match self.close {
            Some(c) => {
                let _ = write!(out, "{c}");
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"notes\":[");
        for (i, n) in self.annotations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},\"{}\",{}]", n.t, n.kind.as_str(), n.value);
        }
        out.push_str("]}");
        out
    }

    /// Parses one JSONL line produced by [`SpanRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed JSON or on a
    /// well-formed object that is not a span.
    pub fn from_json(line: &str) -> Result<SpanRecord, String> {
        let v = json::parse(line)?;
        let obj = v.as_obj().ok_or("span line is not a JSON object")?;
        let field = |name: &str| -> Result<&json::Value, String> {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {name:?}"))
        };
        let path = field("path")?
            .as_str()
            .ok_or("path is not a string")?
            .to_string();
        let layer = field("layer")?.as_str().ok_or("layer is not a string")?;
        let layer = Layer::parse(layer).ok_or_else(|| format!("unknown layer {layer:?}"))?;
        let open = field("open")?.as_u64().ok_or("open is not a number")?;
        let close = match field("close")? {
            json::Value::Null => None,
            v => Some(v.as_u64().ok_or("close is not a number")?),
        };
        let mut annotations = Vec::new();
        for note in field("notes")?.as_arr().ok_or("notes is not an array")? {
            let triple = note.as_arr().ok_or("note is not an array")?;
            if triple.len() != 3 {
                return Err("note is not a [t, kind, value] triple".into());
            }
            let kind = triple[1].as_str().ok_or("note kind is not a string")?;
            annotations.push(SpanNote {
                t: triple[0].as_u64().ok_or("note time is not a number")?,
                kind: SpanAnnotation::parse(kind)
                    .ok_or_else(|| format!("unknown annotation {kind:?}"))?,
                value: triple[2].as_u64().ok_or("note value is not a number")?,
            });
        }
        Ok(SpanRecord {
            path,
            layer,
            open,
            close,
            annotations,
        })
    }
}

/// Renders spans as JSONL (one span object per line).
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&s.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSONL span dump; blank lines are skipped.
///
/// # Errors
///
/// Returns `(line number, message)` for the first malformed line.
pub fn spans_from_jsonl(text: &str) -> Result<Vec<SpanRecord>, (usize, String)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(SpanRecord::from_json(line).map_err(|e| (i + 1, e))?);
    }
    Ok(out)
}

/// A minimal JSON reader for the span-dump format — the crate is
/// zero-dependency, so the trace tooling parses its own dumps with this
/// instead of serde.
mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(u64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut pos = 0;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected {lit:?} at byte {}", *pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
            Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
            Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
            Some(b'"') => string(b, pos).map(Value::Str),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, ":")?;
                    fields.push((key, value(b, pos)?));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let start = *pos;
                while *pos < b.len() && b[*pos].is_ascii_digit() {
                    *pos += 1;
                }
                std::str::from_utf8(&b[start..*pos])
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .map(Value::Num)
                    .ok_or_else(|| format!("bad number at byte {start}"))
            }
            Some(c) => Err(format!("unexpected byte {c:#04x} at {}", *pos)),
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is
                    // always at a char boundary).
                    let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
}

#[derive(Debug, Default)]
struct SpanRegistryInner {
    /// Live spans by path.
    open: BTreeMap<String, SpanRecord>,
    /// Finished spans, oldest first, bounded by [`SPAN_CAPACITY`].
    closed: std::collections::VecDeque<SpanRecord>,
}

/// Bounded per-instance span storage. One mutex guards both maps — span
/// transitions are rare (per protocol instance, not per message), so
/// contention is negligible next to the trace ring's.
#[derive(Debug)]
struct SpanRegistry {
    inner: Mutex<SpanRegistryInner>,
    capacity: usize,
}

impl SpanRegistry {
    fn new(capacity: usize) -> Self {
        SpanRegistry {
            inner: Mutex::new(SpanRegistryInner::default()),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SpanRegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

// ---------------------------------------------------------------------------
// Critical-path roll-up
// ---------------------------------------------------------------------------

/// The per-layer latency breakdown of one a-delivered message. Segments
/// are clamped onto the monotone milestone chain, so they always sum to
/// exactly `total_ns`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The message span path (`ab:{session}/m:{sender}:{rbid}`).
    pub path: String,
    /// a-broadcast → a-deliver, driver nanoseconds.
    pub total_ns: u64,
    /// `(segment label, duration ns)`, in chain order.
    pub segments: Vec<(&'static str, u64)>,
}

impl CriticalPath {
    /// The dominant segment (largest share of the total).
    pub fn dominant(&self) -> (&'static str, u64) {
        self.segments
            .iter()
            .copied()
            .max_by_key(|(_, ns)| *ns)
            .unwrap_or(("total", self.total_ns))
    }

    /// A segment's share of the total in percent (0.0 when total is 0).
    pub fn share(&self, label: &str) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.segments
            .iter()
            .find(|(l, _)| *l == label)
            .map_or(0.0, |(_, ns)| 100.0 * *ns as f64 / self.total_ns as f64)
    }
}

/// Segment labels of the a-deliver critical path, in chain order:
/// broadcast-side batch queueing (`queue`), payload dissemination
/// (`rb`), waiting for the deciding agreement round to open (`wait`),
/// VECT collection (`vect`), MVC proposal gathering (`mvc`), binary
/// consensus (`bc`), MVC decision propagation (`mvc-decide`), round
/// conclusion (`conclude`) and final ordering (`deliver`).
pub const CRITICAL_PATH_SEGMENTS: [&str; 9] = [
    "queue",
    "rb",
    "wait",
    "vect",
    "mvc",
    "bc",
    "mvc-decide",
    "conclude",
    "deliver",
];

/// Attributes every closed AB message span in `spans` to its per-layer
/// critical path, using the child spans along its control-block chain.
/// The milestone chain is clamped monotone, so each breakdown sums to
/// exactly the message's a-deliver latency.
pub fn critical_paths(spans: &[SpanRecord]) -> Vec<CriticalPath> {
    use std::collections::HashMap;
    let by_path: HashMap<&str, &SpanRecord> = spans.iter().map(|s| (s.path.as_str(), s)).collect();
    let closed = |path: &str| -> Option<(u64, u64)> {
        by_path.get(path).and_then(|s| s.close.map(|c| (s.open, c)))
    };
    let mut out = Vec::new();
    for s in spans {
        let Some(t_deliver) = s.close else { continue };
        let Some((root, leaf)) = s.path.rsplit_once('/') else {
            continue;
        };
        if !leaf.starts_with("m:") || root.contains('/') {
            continue;
        }
        let t0 = s.open;
        // Milestone 1: the command left the broadcast-side batch queue
        // (absent for remote messages and unbatched configurations —
        // the segment then collapses to zero).
        let queue_done = closed(&format!("{}/queue", s.path)).map(|(_, c)| c);
        // Milestone 2: the payload RB child delivered.
        let rb_done = closed(&format!("{}/rb", s.path)).map(|(_, c)| c);
        // The deciding round: the round span (`{root}/r:{n}`) whose close
        // is the latest not after the delivery; deliveries happen in the
        // same driver step as the round's conclusion.
        let round = spans
            .iter()
            .filter(|r| {
                r.parent() == Some(root)
                    && r.leaf().starts_with("r:")
                    && r.close.is_some_and(|c| c <= t_deliver)
            })
            .max_by_key(|r| (r.close, r.open));
        let mut milestones: Vec<u64> = Vec::with_capacity(10);
        milestones.push(t0);
        milestones.push(queue_done.unwrap_or(t0));
        milestones.push(rb_done.unwrap_or(t0));
        match round {
            Some(r) => {
                let (r0, r1) = (r.open, r.close.unwrap_or(r.open));
                let mvc = closed(&format!("{}/mvc", r.path));
                let bc = closed(&format!("{}/mvc/bc", r.path));
                milestones.push(r0);
                milestones.push(mvc.map_or(r0, |(o, _)| o));
                milestones.push(bc.map_or(r0, |(o, _)| o));
                milestones.push(bc.map_or(r1, |(_, c)| c));
                milestones.push(mvc.map_or(r1, |(_, c)| c));
                milestones.push(r1);
            }
            None => {
                // Round spans evicted or absent: charge everything after
                // the RB to the agreement machinery wholesale.
                let after_rb = rb_done.unwrap_or(t0);
                milestones.extend([
                    after_rb, after_rb, after_rb, t_deliver, t_deliver, t_deliver,
                ]);
            }
        }
        milestones.push(t_deliver);
        // Clamp onto a monotone chain inside [t0, t_deliver]: segments
        // then sum to exactly t_deliver − t0.
        let mut floor = t0;
        for m in &mut milestones {
            *m = (*m).clamp(floor, t_deliver);
            floor = *m;
        }
        let segments = CRITICAL_PATH_SEGMENTS
            .iter()
            .enumerate()
            .map(|(i, label)| (*label, milestones[i + 1] - milestones[i]))
            .collect();
        out.push(CriticalPath {
            path: s.path.clone(),
            total_ns: t_deliver - t0,
            segments,
        });
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

// ---------------------------------------------------------------------------
// Byzantine suspicion telemetry: per-peer conformance counters
// ---------------------------------------------------------------------------

/// What a peer was caught doing. Mirrors the protocol fault taxonomy
/// (`FaultKind` in the core crate) plus the transport's MAC/anti-replay
/// rejections — every evidence path that attributes misbehavior to a
/// specific peer feeds one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspicionKind {
    /// A transport frame from the peer failed MAC verification or the
    /// anti-replay window (forged or replayed traffic).
    BadMac,
    /// A syntactically malformed protocol message.
    Malformed,
    /// Two conflicting messages where the protocol allows one
    /// (equivocation evidence).
    Equivocation,
    /// A message the peer was not entitled to send in that role.
    NotEntitled,
    /// A vector/matrix authenticator (per-entry MAC) that failed
    /// verification (EB row screening and friends).
    BadAuthenticator,
    /// A value that fails the protocol's justification rule (Bracha
    /// validation, biased coins, unjustified proposals).
    Unjustified,
    /// A state-transfer chunk whose Merkle proof did not verify against
    /// the agreed snapshot root (corrupt snapshot served during
    /// recovery).
    BadChunk,
}

/// Number of [`SuspicionKind`] variants (the per-peer counter row width).
pub const SUSPICION_KINDS: usize = 7;

impl SuspicionKind {
    /// All kinds, in counter-row order.
    pub const ALL: [SuspicionKind; SUSPICION_KINDS] = [
        SuspicionKind::BadMac,
        SuspicionKind::Malformed,
        SuspicionKind::Equivocation,
        SuspicionKind::NotEntitled,
        SuspicionKind::BadAuthenticator,
        SuspicionKind::Unjustified,
        SuspicionKind::BadChunk,
    ];

    /// This kind's slot in a per-peer counter row.
    pub fn index(self) -> usize {
        match self {
            SuspicionKind::BadMac => 0,
            SuspicionKind::Malformed => 1,
            SuspicionKind::Equivocation => 2,
            SuspicionKind::NotEntitled => 3,
            SuspicionKind::BadAuthenticator => 4,
            SuspicionKind::Unjustified => 5,
            SuspicionKind::BadChunk => 6,
        }
    }

    /// Stable kebab-case name used in dumps and Prometheus labels.
    pub fn as_str(self) -> &'static str {
        match self {
            SuspicionKind::BadMac => "bad-mac",
            SuspicionKind::Malformed => "malformed",
            SuspicionKind::Equivocation => "equivocation",
            SuspicionKind::NotEntitled => "not-entitled",
            SuspicionKind::BadAuthenticator => "bad-authenticator",
            SuspicionKind::Unjustified => "unjustified",
            SuspicionKind::BadChunk => "bad-chunk",
        }
    }
}

/// One peer's frozen suspicion-counter row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspicionSnapshot {
    /// The suspected peer.
    pub peer: u32,
    /// Evidence counts, indexed by [`SuspicionKind::index`].
    pub counts: [u64; SUSPICION_KINDS],
}

impl SuspicionSnapshot {
    /// Evidence count for one kind.
    pub fn count(&self, kind: SuspicionKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total evidence against this peer across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// The metric registry: every instrument the stack exposes, as public
/// named fields grouped by layer.
#[derive(Debug)]
pub struct MetricsInner {
    // ---- transport (§2.1) ----
    /// Frames handed to the network.
    pub transport_frames_sent: Counter,
    /// Frames received from the network (before authentication).
    pub transport_frames_recv: Counter,
    /// Payload bytes handed to the network.
    pub transport_bytes_sent: Counter,
    /// Payload bytes received from the network.
    pub transport_bytes_recv: Counter,
    /// Inbound frames dropped by MAC/ICV or anti-replay checks.
    pub transport_mac_rejected: Counter,
    /// Session-resume handshakes completed after a link outage (epoch
    /// advances past the initial establishment).
    pub transport_reconnects_total: Counter,
    /// Unacked frames retransmitted after a session resume.
    pub transport_retransmits_total: Counter,
    /// Inbound frames discarded by receive-side dedup (sequence already
    /// delivered — the retransmission overlap after a resume).
    pub transport_dup_dropped_total: Counter,
    /// Link transitions from `Up` into `Reconnecting`/`Down`.
    pub transport_link_down_total: Counter,
    /// Sends that hit the bounded retransmission buffer and gave up with
    /// `LinkDown` after the bounded wait (backpressure surfaced).
    pub transport_send_backpressure_total: Counter,
    /// Inbound frames rejected for carrying a stale key epoch (older than
    /// the grace window after a proactive key refresh).
    pub transport_epoch_rejected: Counter,
    /// Key-epoch fast-forwards adopted from authenticated peer traffic
    /// (a rejoining replica learning the cluster's current epoch).
    pub transport_epoch_adopted: Counter,
    /// Point-to-point links currently in the `Up` state.
    pub transport_links_up: Gauge,

    // ---- reliable broadcast (§2.3) ----
    /// INIT messages received.
    pub rb_init_recv: Counter,
    /// ECHO messages received.
    pub rb_echo_recv: Counter,
    /// READY messages received.
    pub rb_ready_recv: Counter,
    /// Payloads delivered by reliable broadcast instances.
    pub rb_delivered: Counter,

    // ---- echo broadcast (§2.3) ----
    /// INITIAL messages received.
    pub eb_init_recv: Counter,
    /// Echo-vector messages received.
    pub eb_vect_recv: Counter,
    /// Echo-matrix messages received.
    pub eb_mat_recv: Counter,
    /// Payloads delivered by echo broadcast instances.
    pub eb_delivered: Counter,
    /// Vector/matrix MAC entries that failed verification.
    pub eb_mac_rejected: Counter,

    // ---- binary consensus (§2.4) ----
    /// Instances that proposed.
    pub bc_started: Counter,
    /// Instances that decided.
    pub bc_decided: Counter,
    /// Local/shared coin flips performed.
    pub bc_coin_flips: Counter,
    /// Messages rejected by Bracha's validation rule.
    pub bc_rejected: Counter,
    /// Rounds needed per decided instance.
    pub bc_rounds: Histogram,

    // ---- multi-valued consensus (§2.5) ----
    /// Instances that proposed.
    pub mvc_started: Counter,
    /// Instances that decided a proposed value.
    pub mvc_decided_value: Counter,
    /// Instances that decided ⊥.
    pub mvc_decided_bottom: Counter,
    /// Size in bytes of VECT payloads broadcast (value + justification).
    pub mvc_vect_bytes: Histogram,

    // ---- vector consensus (§2.6) ----
    /// Instances that proposed.
    pub vc_started: Counter,
    /// Instances that decided.
    pub vc_decided: Counter,
    /// ⊥ entries across decided vectors.
    pub vc_bottom_entries: Counter,
    /// Agreement rounds needed per decided instance.
    pub vc_rounds: Histogram,

    // ---- atomic broadcast (§2.7) ----
    /// Messages a-broadcast locally.
    pub ab_broadcast: Counter,
    /// Messages a-delivered locally.
    pub ab_delivered: Counter,
    /// Agreement instances run (MVC decisions consumed).
    pub ab_agreements: Counter,
    /// Messages ordered per non-⊥ agreement (the paper's batching lever).
    pub ab_batch: Histogram,
    /// Commands packed per flushed dissemination batch.
    pub ab_batch_commands: Histogram,
    /// Commands waiting in the broadcast-side batch queue.
    pub ab_queue_depth: Gauge,
    /// Batches flushed because the queue reached the size bound.
    pub ab_flush_size: Counter,
    /// Batches flushed because the oldest queued command aged out.
    pub ab_flush_age: Counter,
    /// Batches flushed immediately because no own batch was in flight.
    pub ab_flush_idle: Counter,
    /// a-broadcast → a-deliver latency in driver nanoseconds (own
    /// messages only).
    pub ab_latency_ns: Histogram,

    // ---- service tier (client front-end) ----
    /// Client requests accepted by the server front-end (post-auth).
    pub service_requests_total: Counter,
    /// Replies sent back to clients.
    pub service_replies_total: Counter,
    /// Requests answered from the session table or an in-flight merge
    /// without a fresh a-broadcast (retry dedup at the serving replica).
    pub service_dedup_hits: Counter,
    /// Ordered duplicates skipped at apply time (another replica already
    /// got the same `(client, seq)` command ordered first).
    pub service_dup_apply_skipped: Counter,
    /// Client commands actually applied to the replicated state.
    pub service_commands_applied: Counter,
    /// Optimistic (unordered, locally served) reads.
    pub service_reads_optimistic: Counter,
    /// Reads that went through the ordered (atomic-broadcast) path.
    pub service_reads_ordered: Counter,
    /// Inbound client frames dropped for failing MAC authentication.
    pub service_auth_rejected: Counter,
    /// Requests refused because the session table was full of live
    /// in-flight sessions (admission control).
    pub service_busy_rejected: Counter,
    /// Client sessions currently tracked by the session table.
    pub service_sessions_live: Gauge,
    /// Client requests currently in flight (submitted, not yet applied).
    pub service_inflight: Gauge,
    /// Client-side: requests issued.
    pub service_client_requests: Counter,
    /// Client-side: retransmissions after timeout/failover.
    pub service_client_retries: Counter,
    /// Client-side: reply sets that never reached `f+1` matching votes
    /// within a round (Byzantine or divergent replies observed).
    pub service_client_vote_failures: Counter,
    /// Client-side: individual replies discarded by the vote rule
    /// (mismatching the winning value, bad MAC, or wrong status).
    pub service_client_replies_rejected: Counter,
    /// Client-side: optimistic reads that fell back to the ordered path.
    pub service_client_read_fallbacks: Counter,
    /// Client-side: end-to-end request latency in nanoseconds (send of
    /// first copy → `f+1`-th matching reply).
    pub service_e2e_latency_ns: Histogram,

    // ---- spans ----
    /// Spans opened.
    pub span_opened: Counter,
    /// Spans closed.
    pub span_closed: Counter,
    /// Span opens dropped by the capacity or depth caps.
    pub span_dropped: Counter,
    /// Closes with no matching open span (counted, then ignored).
    pub span_orphan_closed: Counter,
    /// Currently live (open) spans.
    pub span_open_live: Gauge,

    // ---- stack / node (§3) ----
    /// Local a-broadcasts still awaiting their a-deliver (the node
    /// runtime's latency-correlation map; bounded).
    pub ab_sent_pending: Gauge,
    /// Frames dispatched through the stack router.
    pub stack_frames_in: Counter,
    /// Messages parked in the out-of-context buffer (§3.4).
    pub stack_ooc_parked: Counter,
    /// Out-of-context messages dropped by the buffer caps.
    pub stack_ooc_dropped: Counter,
    /// Faults attributed to peers (equivocation, bad MACs, garbage…).
    pub faults_detected: Counter,
    /// Live protocol instances in the stack.
    pub stack_instances: Gauge,
    /// Messages currently parked out-of-context.
    pub stack_ooc_buffered: Gauge,
    /// High-water mark of the out-of-context buffer.
    pub stack_ooc_high_water: Gauge,

    // ---- health / forensics ----
    /// Watchdog stall detections: outstanding work made no protocol
    /// progress within the configured budget.
    pub node_stalls_total: Counter,
    /// Deliveries applied by the replicated state machine (all senders,
    /// markers included).
    pub rsm_applied_total: Counter,
    /// RSM apply watermark: own sequential rbids applied contiguously.
    pub rsm_applied_watermark: Gauge,
    /// Byzantine-suspicion events across all peers (the per-peer,
    /// per-kind breakdown is [`Metrics::suspicions`]).
    pub suspicions_total: Counter,

    // ---- recovery (snapshots, state transfer, rejoin) ----
    /// Snapshots taken at apply-watermark boundaries.
    pub recovery_snapshots_total: Counter,
    /// Snapshot/Merkle-node/chunk/fill requests served to peers.
    pub recovery_chunks_served: Counter,
    /// Snapshot chunks fetched (and proof-verified) during a rejoin.
    pub recovery_chunks_fetched: Counter,
    /// Chunks reused from a stale local snapshot by Merkle anti-entropy
    /// (not downloaded).
    pub recovery_chunks_reused: Counter,
    /// Fetched chunks whose Merkle proof failed verification (corrupt
    /// chunk server; also feeds the suspicion table).
    pub recovery_chunk_proof_rejected: Counter,
    /// Log entries applied from the peer fill protocol while catching up.
    pub recovery_fills_applied: Counter,
    /// Rejoins that reached the `Live` phase.
    pub recovery_completed_total: Counter,
    /// Current recovery phase (0 live, 1 syncing, 2 catching up).
    pub recovery_phase: Gauge,
    /// Encoded size in bytes of the latest local snapshot.
    pub recovery_snapshot_bytes: Gauge,

    // ---- proactive rotation (scheduler) ----
    /// Rotation slots scheduled through atomic broadcast (`ScheduleWipe`
    /// commands applied from the replicated log).
    pub rotation_scheduled_total: Counter,
    /// Wipe-and-rejoin rounds completed (`WipeComplete` applied).
    pub rotation_rounds_total: Counter,
    /// Rotation slots deferred because the group was already degraded
    /// (stall watchdog, suspicion pressure, or a stuck slot aborted).
    pub rotation_deferrals_total: Counter,
    /// Current key epoch agreed through the replicated log.
    pub rotation_epoch: Gauge,
    /// Victim of the in-flight rotation slot, stored as `id + 1`
    /// (0 = no slot active).
    pub rotation_active_victim: Gauge,
    /// Replica scheduled to recover on the next rotation slot.
    pub rotation_next_victim: Gauge,

    suspicions: Mutex<BTreeMap<u32, [u64; SUSPICION_KINDS]>>,
    flight: flight::FlightRecorder,
    spans: SpanRegistry,
    trace: TraceRing,
    clock: AtomicU64,
    seq: AtomicU64,
    tracing_enabled: AtomicBool,
}

impl Default for MetricsInner {
    fn default() -> Self {
        MetricsInner {
            transport_frames_sent: Counter::default(),
            transport_frames_recv: Counter::default(),
            transport_bytes_sent: Counter::default(),
            transport_bytes_recv: Counter::default(),
            transport_mac_rejected: Counter::default(),
            transport_reconnects_total: Counter::default(),
            transport_retransmits_total: Counter::default(),
            transport_dup_dropped_total: Counter::default(),
            transport_link_down_total: Counter::default(),
            transport_send_backpressure_total: Counter::default(),
            transport_epoch_rejected: Counter::default(),
            transport_epoch_adopted: Counter::default(),
            transport_links_up: Gauge::default(),
            rb_init_recv: Counter::default(),
            rb_echo_recv: Counter::default(),
            rb_ready_recv: Counter::default(),
            rb_delivered: Counter::default(),
            eb_init_recv: Counter::default(),
            eb_vect_recv: Counter::default(),
            eb_mat_recv: Counter::default(),
            eb_delivered: Counter::default(),
            eb_mac_rejected: Counter::default(),
            bc_started: Counter::default(),
            bc_decided: Counter::default(),
            bc_coin_flips: Counter::default(),
            bc_rejected: Counter::default(),
            bc_rounds: Histogram::default(),
            mvc_started: Counter::default(),
            mvc_decided_value: Counter::default(),
            mvc_decided_bottom: Counter::default(),
            mvc_vect_bytes: Histogram::default(),
            vc_started: Counter::default(),
            vc_decided: Counter::default(),
            vc_bottom_entries: Counter::default(),
            vc_rounds: Histogram::default(),
            ab_broadcast: Counter::default(),
            ab_delivered: Counter::default(),
            ab_agreements: Counter::default(),
            ab_batch: Histogram::default(),
            ab_batch_commands: Histogram::default(),
            ab_queue_depth: Gauge::default(),
            ab_flush_size: Counter::default(),
            ab_flush_age: Counter::default(),
            ab_flush_idle: Counter::default(),
            ab_latency_ns: Histogram::default(),
            service_requests_total: Counter::default(),
            service_replies_total: Counter::default(),
            service_dedup_hits: Counter::default(),
            service_dup_apply_skipped: Counter::default(),
            service_commands_applied: Counter::default(),
            service_reads_optimistic: Counter::default(),
            service_reads_ordered: Counter::default(),
            service_auth_rejected: Counter::default(),
            service_busy_rejected: Counter::default(),
            service_sessions_live: Gauge::default(),
            service_inflight: Gauge::default(),
            service_client_requests: Counter::default(),
            service_client_retries: Counter::default(),
            service_client_vote_failures: Counter::default(),
            service_client_replies_rejected: Counter::default(),
            service_client_read_fallbacks: Counter::default(),
            service_e2e_latency_ns: Histogram::default(),
            span_opened: Counter::default(),
            span_closed: Counter::default(),
            span_dropped: Counter::default(),
            span_orphan_closed: Counter::default(),
            span_open_live: Gauge::default(),
            ab_sent_pending: Gauge::default(),
            stack_frames_in: Counter::default(),
            stack_ooc_parked: Counter::default(),
            stack_ooc_dropped: Counter::default(),
            faults_detected: Counter::default(),
            stack_instances: Gauge::default(),
            stack_ooc_buffered: Gauge::default(),
            stack_ooc_high_water: Gauge::default(),
            node_stalls_total: Counter::default(),
            rsm_applied_total: Counter::default(),
            rsm_applied_watermark: Gauge::default(),
            suspicions_total: Counter::default(),
            recovery_snapshots_total: Counter::default(),
            recovery_chunks_served: Counter::default(),
            recovery_chunks_fetched: Counter::default(),
            recovery_chunks_reused: Counter::default(),
            recovery_chunk_proof_rejected: Counter::default(),
            recovery_fills_applied: Counter::default(),
            recovery_completed_total: Counter::default(),
            recovery_phase: Gauge::default(),
            recovery_snapshot_bytes: Gauge::default(),
            rotation_scheduled_total: Counter::default(),
            rotation_rounds_total: Counter::default(),
            rotation_deferrals_total: Counter::default(),
            rotation_epoch: Gauge::default(),
            rotation_active_victim: Gauge::default(),
            rotation_next_victim: Gauge::default(),
            suspicions: Mutex::new(BTreeMap::new()),
            flight: flight::FlightRecorder::new(flight::FLIGHT_CAPACITY),
            spans: SpanRegistry::new(SPAN_CAPACITY),
            trace: TraceRing::new(TRACE_CAPACITY),
            clock: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            tracing_enabled: AtomicBool::new(true),
        }
    }
}

/// A cheaply cloneable handle to one process's metric registry.
///
/// Every protocol instance in a stack shares the stack's handle; a
/// free-standing instance created without one gets its own private
/// registry, so instrumentation code never needs a null check.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

impl Metrics {
    /// Creates a fresh registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Enables or disables span/trace recording on this registry.
    ///
    /// Counters, gauges and histograms are always live — only the
    /// allocating observability paths (`span_open`, `span_close`,
    /// `span_annotate`, `trace`) become no-ops when disabled. Throughput
    /// benchmarks turn tracing off so the measurement isn't dominated by
    /// its own instrumentation (~30% CPU on a saturated single core);
    /// everything else keeps the default (enabled).
    pub fn set_tracing(&self, enabled: bool) {
        self.inner.tracing_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether span/trace recording is currently enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.inner.tracing_enabled.load(Ordering::Relaxed)
    }

    /// Injects the driver's current time (wall ns or virtual ns) used to
    /// stamp subsequent trace events.
    pub fn set_time(&self, now: u64) {
        self.inner.clock.store(now, Ordering::Relaxed);
    }

    /// The last injected driver time.
    pub fn time(&self) -> u64 {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// Records a structured trace event.
    pub fn trace(
        &self,
        layer: Layer,
        kind: &'static str,
        instance_id: impl Into<String>,
        round: u32,
    ) {
        if !self.tracing_enabled() {
            return;
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.inner.trace.push(TraceEvent {
            seq,
            timestamp: self.time(),
            instance_id: instance_id.into(),
            layer,
            kind,
            round,
        });
    }

    /// Opens the span at `path`, stamped with the current driver time.
    /// Idempotent: re-opening a live span keeps the original open time.
    /// Opens past [`SPAN_CAPACITY`] live spans or [`SPAN_MAX_DEPTH`]
    /// path segments are dropped (and counted in `span_dropped`).
    pub fn span_open(&self, path: impl Into<String>, layer: Layer) {
        if !self.tracing_enabled() {
            return;
        }
        let path = path.into();
        if path.split('/').count() > SPAN_MAX_DEPTH {
            self.inner.span_dropped.inc();
            return;
        }
        let now = self.time();
        let mut g = self.inner.spans.lock();
        if g.open.contains_key(&path) {
            return;
        }
        if g.open.len() >= self.inner.spans.capacity {
            self.inner.span_dropped.inc();
            return;
        }
        g.open.insert(
            path.clone(),
            SpanRecord {
                path,
                layer,
                open: now,
                close: None,
                annotations: Vec::new(),
            },
        );
        self.inner.span_opened.inc();
        self.inner.span_open_live.set(g.open.len() as u64);
    }

    /// Attaches a typed annotation to the live span at `path`; ignored
    /// (not an error) when the span is not open.
    pub fn span_annotate(&self, path: &str, kind: SpanAnnotation, value: u64) {
        if !self.tracing_enabled() {
            return;
        }
        let now = self.time();
        let mut g = self.inner.spans.lock();
        if let Some(s) = g.open.get_mut(path) {
            if s.annotations.len() < SPAN_MAX_ANNOTATIONS {
                let t = now.max(s.open);
                s.annotations.push(SpanNote { t, kind, value });
            }
        }
    }

    /// Closes the span at `path` at the current driver time (clamped to
    /// ≥ its open time, keeping virtual-time durations monotone). An
    /// orphan close — no matching open — is counted and ignored.
    pub fn span_close(&self, path: &str) {
        if !self.tracing_enabled() {
            return;
        }
        let now = self.time();
        let mut g = self.inner.spans.lock();
        match g.open.remove(path) {
            Some(mut s) => {
                s.close = Some(now.max(s.open));
                if g.closed.len() >= self.inner.spans.capacity {
                    g.closed.pop_front();
                }
                g.closed.push_back(s);
                self.inner.span_closed.inc();
                self.inner.span_open_live.set(g.open.len() as u64);
            }
            None => self.inner.span_orphan_closed.inc(),
        }
    }

    /// Records evidence of misbehavior attributed to `peer`. Feeds the
    /// per-peer suspicion table, the aggregate `suspicions_total`
    /// counter, and the flight recorder. Unlike spans, suspicion
    /// accounting is never gated by [`Metrics::set_tracing`] — it is
    /// intrusion *detection* state, not tracing.
    pub fn suspect(&self, peer: u32, kind: SuspicionKind) {
        self.inner.suspicions_total.inc();
        {
            let mut g = self
                .inner
                .suspicions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            g.entry(peer).or_insert([0; SUSPICION_KINDS])[kind.index()] += 1;
        }
        self.flight_record(FlightKind::Suspicion, peer, kind.index() as u64, 0);
    }

    /// Drops every suspicion row accumulated against `peer`.
    ///
    /// Called when `peer` completes a proactive wipe-and-rejoin: a
    /// rejuvenated replica starts from a clean image and a fresh key
    /// epoch, so pre-wipe Byzantine evidence no longer describes the
    /// process now running under that id. The aggregate
    /// `suspicions_total` counter is monotone history and is *not*
    /// rewound; only the live per-peer table is reset. The clear itself
    /// is flight-recorded so forensics can see when evidence was aged
    /// out.
    pub fn clear_suspicions_of(&self, peer: u32) {
        let cleared = {
            let mut g = self
                .inner
                .suspicions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match g.remove(&peer) {
                Some(counts) => counts.iter().sum::<u64>(),
                None => return,
            }
        };
        self.flight_record(FlightKind::Recovery, peer, u64::MAX, cleared);
    }

    /// The per-peer suspicion table, peers in ascending order. Empty in
    /// failure-free runs — every row is evidence.
    pub fn suspicions(&self) -> Vec<SuspicionSnapshot> {
        self.inner
            .suspicions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&peer, &counts)| SuspicionSnapshot { peer, counts })
            .collect()
    }

    /// Records one flight-recorder event stamped with the driver clock.
    pub fn flight_record(&self, kind: FlightKind, peer: u32, a: u64, b: u64) {
        self.inner.flight.record(FlightEvent {
            t: self.time(),
            kind,
            peer,
            a,
            b,
        });
    }

    /// The bounded flight recorder (protocol-event ring for post-mortem
    /// dumps).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// All retained spans: closed spans oldest-first, then the still-open
    /// ones (with `close == None`) in path order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let g = self.inner.spans.lock();
        g.closed
            .iter()
            .cloned()
            .chain(g.open.values().cloned())
            .collect()
    }

    /// Freezes every instrument into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = &*self.inner;
        let mut counters = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        macro_rules! counter {
            ($($name:ident),* $(,)?) => {
                $(counters.insert(stringify!($name), m.$name.get());)*
            };
        }
        macro_rules! histogram {
            ($($name:ident),* $(,)?) => {
                $(histograms.insert(stringify!($name), m.$name.snapshot());)*
            };
        }
        counter!(
            transport_frames_sent,
            transport_frames_recv,
            transport_bytes_sent,
            transport_bytes_recv,
            transport_mac_rejected,
            transport_reconnects_total,
            transport_retransmits_total,
            transport_dup_dropped_total,
            transport_link_down_total,
            transport_send_backpressure_total,
            transport_epoch_rejected,
            transport_epoch_adopted,
            rb_init_recv,
            rb_echo_recv,
            rb_ready_recv,
            rb_delivered,
            eb_init_recv,
            eb_vect_recv,
            eb_mat_recv,
            eb_delivered,
            eb_mac_rejected,
            bc_started,
            bc_decided,
            bc_coin_flips,
            bc_rejected,
            mvc_started,
            mvc_decided_value,
            mvc_decided_bottom,
            vc_started,
            vc_decided,
            vc_bottom_entries,
            ab_broadcast,
            ab_delivered,
            ab_agreements,
            ab_flush_size,
            ab_flush_age,
            ab_flush_idle,
            service_requests_total,
            service_replies_total,
            service_dedup_hits,
            service_dup_apply_skipped,
            service_commands_applied,
            service_reads_optimistic,
            service_reads_ordered,
            service_auth_rejected,
            service_busy_rejected,
            service_client_requests,
            service_client_retries,
            service_client_vote_failures,
            service_client_replies_rejected,
            service_client_read_fallbacks,
            span_opened,
            span_closed,
            span_dropped,
            span_orphan_closed,
            stack_frames_in,
            stack_ooc_parked,
            stack_ooc_dropped,
            faults_detected,
            node_stalls_total,
            rsm_applied_total,
            suspicions_total,
            recovery_snapshots_total,
            recovery_chunks_served,
            recovery_chunks_fetched,
            recovery_chunks_reused,
            recovery_chunk_proof_rejected,
            recovery_fills_applied,
            recovery_completed_total,
            rotation_scheduled_total,
            rotation_rounds_total,
            rotation_deferrals_total,
        );
        // Gauges join the counter map (point-in-time values).
        counters.insert("stack_instances", m.stack_instances.get());
        counters.insert("stack_ooc_buffered", m.stack_ooc_buffered.get());
        counters.insert("stack_ooc_high_water", m.stack_ooc_high_water.get());
        counters.insert("span_open_live", m.span_open_live.get());
        counters.insert("ab_sent_pending", m.ab_sent_pending.get());
        counters.insert("ab_queue_depth", m.ab_queue_depth.get());
        counters.insert("transport_links_up", m.transport_links_up.get());
        counters.insert("service_sessions_live", m.service_sessions_live.get());
        counters.insert("service_inflight", m.service_inflight.get());
        counters.insert("rsm_applied_watermark", m.rsm_applied_watermark.get());
        counters.insert("recovery_phase", m.recovery_phase.get());
        counters.insert("recovery_snapshot_bytes", m.recovery_snapshot_bytes.get());
        counters.insert("rotation_epoch", m.rotation_epoch.get());
        counters.insert("rotation_active_victim", m.rotation_active_victim.get());
        counters.insert("rotation_next_victim", m.rotation_next_victim.get());
        histogram!(
            bc_rounds,
            mvc_vect_bytes,
            vc_rounds,
            ab_batch,
            ab_batch_commands,
            ab_latency_ns,
            service_e2e_latency_ns
        );
        MetricsSnapshot {
            counters,
            histograms,
            trace: m.trace.to_vec(),
            spans: self.spans(),
            suspicions: self.suspicions(),
        }
    }

    /// Direct access to the instruments (for instrumentation sites).
    pub fn raw(&self) -> &MetricsInner {
        &self.inner
    }
}

impl std::ops::Deref for Metrics {
    type Target = MetricsInner;

    fn deref(&self) -> &MetricsInner {
        &self.inner
    }
}

/// A frozen, serializable view of one process's metrics.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// All counters and gauges by stable name.
    pub counters: BTreeMap<&'static str, u64>,
    /// All histograms by stable name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
    /// The trace ring contents, oldest first.
    pub trace: Vec<TraceEvent>,
    /// Retained instance spans: closed oldest-first, then open ones.
    pub spans: Vec<SpanRecord>,
    /// Per-peer Byzantine suspicion rows, peers ascending (empty in
    /// failure-free runs).
    pub suspicions: Vec<SuspicionSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter/gauge, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Whether every layer of the stack reported at least one event —
    /// the "the run actually exercised the whole stack" check used by
    /// integration tests.
    pub fn all_layers_active(&self) -> bool {
        self.counter("transport_frames_recv") > 0
            && self.counter("rb_echo_recv") + self.counter("rb_init_recv") > 0
            && self.counter("eb_init_recv") + self.counter("eb_vect_recv") > 0
            && self.counter("bc_decided") > 0
            && self.counter("mvc_started") > 0
            && self.counter("vc_started") + self.counter("ab_delivered") > 0
            && self.counter("ab_delivered") > 0
    }

    /// The per-message critical-path breakdowns derivable from the
    /// retained spans (see [`critical_paths`]).
    pub fn critical_paths(&self) -> Vec<CriticalPath> {
        critical_paths(&self.spans)
    }

    /// Renders a stable `name value` text dump (one line per counter,
    /// histograms as `name{count,sum,max,mean,p50,p99}`, then span
    /// totals and up to 20 per-message critical-path breakdowns).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}{{count={} sum={} max={} mean={:.1} p50={} p99={}}}",
                h.count,
                h.sum,
                h.max,
                h.mean(),
                h.percentile(50.0),
                h.percentile(99.0)
            );
        }
        for s in &self.suspicions {
            let _ = write!(out, "suspicion{{peer={}", s.peer);
            for kind in SuspicionKind::ALL {
                let _ = write!(out, " {}={}", kind.as_str(), s.count(kind));
            }
            let _ = writeln!(out, "}}");
        }
        let _ = writeln!(out, "trace_events {}", self.trace.len());
        let _ = writeln!(out, "spans {}", self.spans.len());
        let paths = self.critical_paths();
        let _ = writeln!(out, "critical_paths {}", paths.len());
        for cp in paths.iter().take(20) {
            let _ = write!(out, "critical_path{{path={} total={}", cp.path, cp.total_ns);
            for (label, ns) in &cp.segments {
                let _ = write!(out, " {label}={ns}");
            }
            let _ = writeln!(out, "}}");
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (metric prefix `ritas_`, histograms with cumulative `le` buckets).
    pub fn to_prometheus(&self) -> String {
        // Point-in-time instruments that live in the counter map.
        const GAUGES: [&str; 15] = [
            "stack_instances",
            "stack_ooc_buffered",
            "stack_ooc_high_water",
            "span_open_live",
            "ab_sent_pending",
            "ab_queue_depth",
            "transport_links_up",
            "service_sessions_live",
            "service_inflight",
            "rsm_applied_watermark",
            "recovery_phase",
            "recovery_snapshot_bytes",
            "rotation_epoch",
            "rotation_active_victim",
            "rotation_next_victim",
        ];
        let mut out = String::new();
        for (name, value) in &self.counters {
            let kind = if GAUGES.contains(name) {
                "gauge"
            } else {
                "counter"
            };
            let _ = writeln!(out, "# TYPE ritas_{name} {kind}");
            let _ = writeln!(out, "ritas_{name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE ritas_{name} histogram");
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                // The overflow bucket is folded into +Inf below.
                if let Some(bound) = Histogram::bucket_bound(i) {
                    let _ = writeln!(out, "ritas_{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
            }
            let _ = writeln!(out, "ritas_{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "ritas_{name}_sum {}", h.sum);
            let _ = writeln!(out, "ritas_{name}_count {}", h.count);
        }
        if !self.suspicions.is_empty() {
            let _ = writeln!(out, "# TYPE ritas_suspicions counter");
            for s in &self.suspicions {
                for kind in SuspicionKind::ALL {
                    let _ = writeln!(
                        out,
                        "ritas_suspicions{{peer=\"{}\",kind=\"{}\"}} {}",
                        s.peer,
                        kind.as_str(),
                        s.count(kind)
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot as a stable JSON object: `{"counters": {...},
    /// "histograms": {...}, "trace": [...], "spans": [...],
    /// "critical_paths": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.max
            );
            // Sparse rendering: [index, count] pairs for nonzero buckets.
            let mut first_bucket = true;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                let _ = write!(out, "[{i},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("},\"suspicions\":[");
        first = true;
        for s in &self.suspicions {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{{\"peer\":{}", s.peer);
            for kind in SuspicionKind::ALL {
                let _ = write!(out, ",\"{}\":{}", kind.as_str(), s.count(kind));
            }
            out.push('}');
        }
        out.push_str("],\"trace\":[");
        first = true;
        for e in &self.trace {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"seq\":{},\"t\":{},\"instance\":\"{}\",\"layer\":\"{}\",\"kind\":\"{}\",\"round\":{}}}",
                e.seq,
                e.timestamp,
                escape_json(&e.instance_id),
                e.layer.as_str(),
                escape_json(e.kind),
                e.round
            );
        }
        out.push_str("],\"spans\":[");
        first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&s.to_json());
        }
        out.push_str("],\"critical_paths\":[");
        first = true;
        for cp in self.critical_paths() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"path\":\"{}\",\"total_ns\":{},\"segments\":{{",
                escape_json(&cp.path),
                cp.total_ns
            );
            let mut first_seg = true;
            for (label, ns) in &cp.segments {
                if !first_seg {
                    out.push(',');
                }
                first_seg = false;
                let _ = write!(out, "\"{label}\":{ns}");
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let m = Metrics::new();
        m.rb_echo_recv.inc();
        m.rb_echo_recv.add(2);
        assert_eq!(m.rb_echo_recv.get(), 3);
        m.stack_instances.set(7);
        m.stack_instances.set_max(3);
        assert_eq!(m.stack_instances.get(), 7);
        m.stack_instances.set_max(11);
        assert_eq!(m.stack_instances.get(), 11);
    }

    #[test]
    fn histogram_bucket_bounds_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_bound(0), Some(0));
        assert_eq!(Histogram::bucket_bound(3), Some(7));
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_records_count_sum_max() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 251.5).abs() < 1e-9);
        // Values 2 and 3 share the [2, 3] bucket.
        assert_eq!(s.buckets[Histogram::bucket_index(2)], 2);
    }

    #[test]
    fn concurrent_counter_updates_do_not_lose_increments() {
        let m = Metrics::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        m.transport_frames_sent.inc();
                        m.ab_latency_ns.record(42);
                    }
                });
            }
        });
        assert_eq!(m.transport_frames_sent.get(), 80_000);
        assert_eq!(m.ab_latency_ns.count(), 80_000);
        assert_eq!(m.ab_latency_ns.sum(), 80_000 * 42);
    }

    #[test]
    fn clone_shares_the_registry() {
        let a = Metrics::new();
        let b = a.clone();
        b.bc_coin_flips.inc();
        assert_eq!(a.bc_coin_flips.get(), 1);
    }

    #[test]
    fn trace_ring_keeps_newest_events() {
        let m = Metrics::new();
        m.set_time(99);
        for i in 0..(TRACE_CAPACITY as u32 + 10) {
            m.trace(Layer::Bc, "round", format!("bc:{i}"), i);
        }
        let snap = m.snapshot();
        assert_eq!(snap.trace.len(), TRACE_CAPACITY);
        let first = &snap.trace[0];
        assert_eq!(first.round, 10); // 10 oldest evicted
        assert_eq!(first.timestamp, 99);
        let last = snap.trace.last().unwrap();
        assert_eq!(last.kind, "round");
        assert_eq!(last.layer, Layer::Bc);
        assert!(last.seq > first.seq);
    }

    #[test]
    fn snapshot_text_and_json_are_stable() {
        let m = Metrics::new();
        m.rb_delivered.add(4);
        m.bc_rounds.record(1);
        m.trace(Layer::Rb, "deliver", "rb:0:1", 0);
        let snap = m.snapshot();
        let text = snap.to_text();
        assert!(text.contains("rb_delivered 4"));
        assert!(text.contains("bc_rounds{count=1 sum=1 max=1 mean=1.0 p50=1 p99=1}"));
        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"rb_delivered\":4"));
        assert!(json.contains("\"bc_rounds\":{\"count\":1"));
        assert!(json.contains("\"instance\":\"rb:0:1\""));
        assert!(json.contains("\"spans\":["));
        assert!(json.contains("\"critical_paths\":["));
        // Deterministic: same snapshot renders identically.
        assert_eq!(json, snap.to_json());
    }

    #[test]
    fn json_escapes_hostile_instance_ids() {
        let m = Metrics::new();
        m.trace(Layer::Stack, "park", "he said \"hi\"\\\n", 0);
        let json = m.snapshot().to_json();
        assert!(json.contains("he said \\\"hi\\\"\\\\\\u000a"));
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap.counter("does_not_exist"), 0);
        assert!(snap.histogram("nope").is_none());
        assert!(!snap.all_layers_active());
    }

    #[test]
    fn percentiles_walk_the_cumulative_buckets() {
        let h = Histogram::default();
        for v in 0..100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // 100 observations over [0, 99]; p50 lands in the [32, 63]
        // bucket, p99 and p100 in the [64, 127] bucket (clamped to max).
        assert_eq!(s.percentile(50.0), 63);
        assert_eq!(s.percentile(99.0), 99);
        assert_eq!(s.percentile(100.0), 99);
        // p ≈ 0 clamps to the first occupied bucket.
        assert_eq!(s.percentile(0.1), 0);
        assert_eq!(Histogram::default().snapshot().percentile(50.0), 0);
    }

    #[test]
    fn span_open_close_roundtrip_with_annotations() {
        let m = Metrics::new();
        m.set_time(100);
        m.span_open("ab:0/m:1:0", Layer::Ab);
        m.set_time(150);
        m.span_annotate("ab:0/m:1:0", SpanAnnotation::RoundEntered, 2);
        m.set_time(300);
        m.span_close("ab:0/m:1:0");
        let spans = m.spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.path, "ab:0/m:1:0");
        assert_eq!((s.open, s.close), (100, Some(300)));
        assert_eq!(s.parent(), Some("ab:0"));
        assert_eq!(s.leaf(), "m:1:0");
        assert_eq!(s.duration(), Some(200));
        assert_eq!(
            s.annotations,
            vec![SpanNote {
                t: 150,
                kind: SpanAnnotation::RoundEntered,
                value: 2
            }]
        );
        assert_eq!(m.span_opened.get(), 1);
        assert_eq!(m.span_closed.get(), 1);
        assert_eq!(m.span_open_live.get(), 0);
    }

    #[test]
    fn span_open_is_idempotent_and_orphan_close_is_counted() {
        let m = Metrics::new();
        m.set_time(10);
        m.span_open("rb:0:1", Layer::Rb);
        m.set_time(50);
        m.span_open("rb:0:1", Layer::Rb); // keeps the original open time
        m.span_close("never-opened");
        assert_eq!(m.span_orphan_closed.get(), 1);
        m.span_close("rb:0:1");
        let spans = m.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].open, 10);
        // Closing twice: the second is an orphan.
        m.span_close("rb:0:1");
        assert_eq!(m.span_orphan_closed.get(), 2);
    }

    #[test]
    fn span_depth_cap_drops_and_counts() {
        let m = Metrics::new();
        let deep = (0..=SPAN_MAX_DEPTH)
            .map(|i| format!("s{i}"))
            .collect::<Vec<_>>()
            .join("/");
        m.span_open(deep.clone(), Layer::Stack);
        assert_eq!(m.span_dropped.get(), 1);
        m.span_close(&deep);
        assert_eq!(m.span_orphan_closed.get(), 1);
        assert!(m.spans().is_empty());
    }

    #[test]
    fn span_close_clamps_backwards_time() {
        // Virtual-time monotonicity: a close stamped before the open
        // (misbehaving driver clock) clamps to a zero-length span.
        let m = Metrics::new();
        m.set_time(500);
        m.span_open("bc:7", Layer::Bc);
        m.set_time(200);
        m.span_annotate("bc:7", SpanAnnotation::CoinFlipped, 1);
        m.span_close("bc:7");
        let s = &m.spans()[0];
        assert_eq!(s.close, Some(500));
        assert_eq!(s.duration(), Some(0));
        assert_eq!(s.annotations[0].t, 500);
    }

    #[test]
    fn span_registry_stays_bounded() {
        let m = Metrics::new();
        for i in 0..(SPAN_CAPACITY + 50) {
            let path = format!("rb:0:{i}");
            m.span_open(path.clone(), Layer::Rb);
            m.span_close(&path);
        }
        let spans = m.spans();
        assert_eq!(spans.len(), SPAN_CAPACITY);
        // Oldest-first eviction: the first retained span is number 50.
        assert_eq!(spans[0].path, "rb:0:50");
        // The open side is bounded too: excess opens are dropped.
        for i in 0..(SPAN_CAPACITY + 10) {
            m.span_open(format!("eb:0:{i}"), Layer::Eb);
        }
        assert!(m.span_open_live.get() <= SPAN_CAPACITY as u64);
        assert!(m.span_dropped.get() >= 10);
    }

    #[test]
    fn span_jsonl_roundtrip() {
        let m = Metrics::new();
        m.set_time(5);
        m.span_open("ab:0/m:0:0", Layer::Ab);
        m.span_open("ab:0/m:0:0/rb", Layer::Rb);
        m.set_time(9);
        m.span_annotate("ab:0/m:0:0", SpanAnnotation::VectCollected, 3);
        m.span_close("ab:0/m:0:0/rb");
        let spans = m.spans();
        let jsonl = spans_to_jsonl(&spans);
        let parsed = spans_from_jsonl(&jsonl).expect("roundtrip parse");
        assert_eq!(parsed, spans);
        // Open spans survive the roundtrip with close = null.
        assert!(parsed.iter().any(|s| s.close.is_none()));
        assert!(jsonl.contains("\"close\":null"));
    }

    #[test]
    fn span_jsonl_rejects_garbage() {
        assert!(spans_from_jsonl("not json\n").is_err());
        assert!(spans_from_jsonl("{\"path\":\"x\"}\n").is_err());
        assert!(spans_from_jsonl(
            "{\"path\":\"x\",\"layer\":\"nope\",\"open\":1,\"close\":null,\"notes\":[]}"
        )
        .is_err());
        let (line, _) = spans_from_jsonl(
            "{\"path\":\"x\",\"layer\":\"rb\",\"open\":1,\"close\":2,\"notes\":[]}\nbroken",
        )
        .unwrap_err();
        assert_eq!(line, 2);
    }

    /// Builds the span tree of one delivered AB message with known
    /// milestone times.
    fn message_tree(m: &Metrics) {
        m.set_time(0);
        m.span_open("ab:0/m:0:0", Layer::Ab);
        m.span_open("ab:0/m:0:0/queue", Layer::Ab);
        m.set_time(20);
        m.span_close("ab:0/m:0:0/queue");
        m.span_open("ab:0/m:0:0/rb", Layer::Rb);
        m.set_time(100);
        m.span_close("ab:0/m:0:0/rb");
        m.set_time(120);
        m.span_open("ab:0/r:1", Layer::Ab);
        m.set_time(200);
        m.span_open("ab:0/r:1/mvc", Layer::Mvc);
        m.set_time(260);
        m.span_open("ab:0/r:1/mvc/bc", Layer::Bc);
        m.set_time(700);
        m.span_close("ab:0/r:1/mvc/bc");
        m.set_time(780);
        m.span_close("ab:0/r:1/mvc");
        m.set_time(800);
        m.span_close("ab:0/r:1");
        m.span_close("ab:0/m:0:0");
    }

    #[test]
    fn critical_path_components_sum_to_the_total() {
        let m = Metrics::new();
        message_tree(&m);
        let paths = critical_paths(&m.spans());
        assert_eq!(paths.len(), 1);
        let cp = &paths[0];
        assert_eq!(cp.path, "ab:0/m:0:0");
        assert_eq!(cp.total_ns, 800);
        let sum: u64 = cp.segments.iter().map(|(_, ns)| ns).sum();
        assert_eq!(sum, cp.total_ns, "segments must sum exactly");
        let seg = |l: &str| cp.segments.iter().find(|(s, _)| *s == l).unwrap().1;
        assert_eq!(seg("queue"), 20);
        assert_eq!(seg("rb"), 80);
        assert_eq!(seg("wait"), 20);
        assert_eq!(seg("vect"), 80);
        assert_eq!(seg("mvc"), 60);
        assert_eq!(seg("bc"), 440);
        assert_eq!(seg("mvc-decide"), 80);
        assert_eq!(seg("conclude"), 20);
        assert_eq!(seg("deliver"), 0);
        assert_eq!(cp.dominant().0, "bc");
        assert!((cp.share("bc") - 55.0).abs() < 0.1);
        // The snapshot renders it in both formats.
        let snap = m.snapshot();
        assert!(snap
            .to_text()
            .contains("critical_path{path=ab:0/m:0:0 total=800"));
        assert!(snap
            .to_json()
            .contains("\"critical_paths\":[{\"path\":\"ab:0/m:0:0\""));
    }

    #[test]
    fn critical_path_without_round_spans_still_sums() {
        let m = Metrics::new();
        m.set_time(0);
        m.span_open("ab:0/m:2:5", Layer::Ab);
        m.span_open("ab:0/m:2:5/rb", Layer::Rb);
        m.set_time(40);
        m.span_close("ab:0/m:2:5/rb");
        m.set_time(90);
        m.span_close("ab:0/m:2:5");
        let paths = critical_paths(&m.spans());
        assert_eq!(paths.len(), 1);
        let sum: u64 = paths[0].segments.iter().map(|(_, ns)| ns).sum();
        assert_eq!(sum, 90);
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let m = Metrics::new();
        m.rb_delivered.add(3);
        m.stack_instances.set(2);
        m.ab_latency_ns.record(5);
        m.ab_latency_ns.record(1000);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE ritas_rb_delivered counter\nritas_rb_delivered 3"));
        assert!(text.contains("# TYPE ritas_stack_instances gauge"));
        assert!(text.contains("# TYPE ritas_ab_latency_ns histogram"));
        assert!(text.contains("ritas_ab_latency_ns_bucket{le=\"7\"} 1"));
        assert!(text.contains("ritas_ab_latency_ns_bucket{le=\"1023\"} 2"));
        assert!(text.contains("ritas_ab_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("ritas_ab_latency_ns_sum 1005"));
        assert!(text.contains("ritas_ab_latency_ns_count 2"));
    }

    #[test]
    fn set_tracing_false_gates_spans_and_trace_but_not_counters() {
        let m = Metrics::new();
        m.set_tracing(false);
        assert!(!m.tracing_enabled());
        m.trace(Layer::Ab, "gated", "x", 0);
        m.span_open("rb:0:gated", Layer::Rb);
        m.span_close("rb:0:gated");
        m.ab_delivered.inc();
        let snap = m.snapshot();
        assert!(snap.trace.is_empty(), "trace recorded while disabled");
        assert!(snap.spans.is_empty(), "span recorded while disabled");
        assert_eq!(snap.counters["ab_delivered"], 1, "counters must stay live");
        // Orphan-close bookkeeping is also suppressed while disabled.
        assert_eq!(snap.counters["span_orphan_closed"], 0);
        // Re-enabling restores the full pipeline.
        m.set_tracing(true);
        m.span_open("rb:0:live", Layer::Rb);
        m.span_close("rb:0:live");
        m.trace(Layer::Ab, "live", "y", 1);
        let snap = m.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.trace.len(), 1);
    }

    #[test]
    fn trace_ring_stays_bounded_under_concurrent_snapshots() {
        // Satellite regression test: 8 writer threads flood the trace
        // ring and span registry while 4 reader threads snapshot; the
        // ring must never exceed its capacity and every snapshot must be
        // internally consistent (monotone seq, bounded collections).
        let m = Metrics::new();
        std::thread::scope(|scope| {
            for w in 0..8 {
                let m = m.clone();
                scope.spawn(move || {
                    for i in 0..2_000u32 {
                        m.trace(Layer::Ab, "stress", format!("w{w}:{i}"), i);
                        let path = format!("rb:{w}:{i}");
                        m.span_open(path.clone(), Layer::Rb);
                        m.span_close(&path);
                    }
                });
            }
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let snap = m.snapshot();
                        assert!(snap.trace.len() <= TRACE_CAPACITY);
                        assert!(snap.spans.len() <= 2 * SPAN_CAPACITY);
                        // Sequence numbers are allocated before the ring
                        // push, so cross-thread order can interleave —
                        // but every event is distinct and the ring is
                        // nearly sorted (races span adjacent events).
                        let mut seqs: Vec<u64> = snap.trace.iter().map(|e| e.seq).collect();
                        seqs.dedup();
                        let n = seqs.len();
                        seqs.sort_unstable();
                        seqs.dedup();
                        assert_eq!(seqs.len(), n, "duplicate trace events");
                        // Renderings never panic mid-flight.
                        let _ = snap.to_text();
                        let _ = snap.to_prometheus();
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.trace.len(), TRACE_CAPACITY);
        assert_eq!(snap.spans.len(), SPAN_CAPACITY);
        assert_eq!(m.span_opened.get(), 8 * 2_000);
        assert_eq!(m.span_closed.get(), 8 * 2_000);
    }

    #[test]
    fn prometheus_exports_every_batching_metric() {
        // Scrape-presence audit for the PR-6 batching instruments: all
        // five must appear in the exposition even before any traffic
        // (gauges and counters render at 0; histograms always emit
        // their _sum/_count series).
        let m = Metrics::new();
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE ritas_ab_queue_depth gauge\nritas_ab_queue_depth 0"));
        assert!(text.contains("# TYPE ritas_ab_flush_size counter\nritas_ab_flush_size 0"));
        assert!(text.contains("# TYPE ritas_ab_flush_age counter\nritas_ab_flush_age 0"));
        assert!(text.contains("# TYPE ritas_ab_flush_idle counter\nritas_ab_flush_idle 0"));
        assert!(text.contains("# TYPE ritas_ab_batch_commands histogram"));
        assert!(text.contains("ritas_ab_batch_commands_count 0"));
        // And the values flow through once the instruments move.
        m.ab_queue_depth.set(3);
        m.ab_flush_size.inc();
        m.ab_batch_commands.record(8);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("ritas_ab_queue_depth 3"));
        assert!(text.contains("ritas_ab_flush_size 1"));
        assert!(text.contains("ritas_ab_batch_commands_count 1"));
        // New health instruments ride the same audit.
        assert!(text.contains("# TYPE ritas_node_stalls_total counter"));
        assert!(text.contains("# TYPE ritas_rsm_applied_watermark gauge"));
    }

    #[test]
    fn set_tracing_toggled_mid_run_keeps_critical_paths_exact() {
        let m = Metrics::new();
        // Tree 1 records normally.
        message_tree(&m);
        m.ab_delivered.inc();
        let before = critical_paths(&m.spans()).len();
        assert_eq!(before, 1);
        // Tracing off mid-run: a whole message tree goes unrecorded,
        // counters keep incrementing.
        m.set_tracing(false);
        m.set_time(1_000);
        m.span_open("ab:0/m:1:0", Layer::Ab);
        m.span_open("ab:0/m:1:0/rb", Layer::Rb);
        m.set_time(1_100);
        m.span_close("ab:0/m:1:0/rb");
        m.span_close("ab:0/m:1:0");
        m.ab_delivered.inc();
        assert_eq!(critical_paths(&m.spans()).len(), 1, "no span while off");
        assert_eq!(m.ab_delivered.get(), 2, "counters live while off");
        // Resume: a post-toggle tree records cleanly and its critical
        // path still sums exactly to the a-deliver latency.
        m.set_tracing(true);
        m.set_time(2_000);
        m.span_open("ab:0/m:2:5", Layer::Ab);
        m.span_open("ab:0/m:2:5/rb", Layer::Rb);
        m.set_time(2_040);
        m.span_close("ab:0/m:2:5/rb");
        m.set_time(2_090);
        m.span_close("ab:0/m:2:5");
        m.ab_delivered.inc();
        let paths = critical_paths(&m.spans());
        assert_eq!(paths.len(), 2);
        for cp in &paths {
            let sum: u64 = cp.segments.iter().map(|(_, ns)| ns).sum();
            assert_eq!(sum, cp.total_ns, "post-toggle segments must sum exactly");
        }
        assert_eq!(m.ab_delivered.get(), 3);
        // No half-open leftovers from the disabled window.
        assert_eq!(m.span_open_live.get(), 0);
    }

    #[test]
    fn suspicions_accumulate_per_peer_and_render_everywhere() {
        let m = Metrics::new();
        assert!(m.suspicions().is_empty(), "no false accusations by default");
        m.suspect(2, SuspicionKind::Equivocation);
        m.suspect(2, SuspicionKind::Equivocation);
        m.suspect(2, SuspicionKind::BadMac);
        m.suspect(5, SuspicionKind::Malformed);
        let rows = m.suspicions();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].peer, 2);
        assert_eq!(rows[0].count(SuspicionKind::Equivocation), 2);
        assert_eq!(rows[0].count(SuspicionKind::BadMac), 1);
        assert_eq!(rows[0].total(), 3);
        assert_eq!(rows[1].peer, 5);
        assert_eq!(rows[1].count(SuspicionKind::Malformed), 1);
        assert_eq!(m.suspicions_total.get(), 4);
        let snap = m.snapshot();
        assert!(snap.to_text().contains("suspicion{peer=2"));
        assert!(snap
            .to_prometheus()
            .contains("ritas_suspicions{peer=\"2\",kind=\"equivocation\"} 2"));
        assert!(snap
            .to_json()
            .contains("\"suspicions\":[{\"peer\":2,\"bad-mac\":1"));
        // Suspicion accounting ignores the tracing gate — it is
        // detection state, not a span.
        m.set_tracing(false);
        m.suspect(2, SuspicionKind::Unjustified);
        assert_eq!(m.suspicions()[0].count(SuspicionKind::Unjustified), 1);
        // Every suspect() call also lands in the flight recorder.
        let flights = m.flight().events();
        assert_eq!(
            flights
                .iter()
                .filter(|e| e.kind == FlightKind::Suspicion)
                .count(),
            5
        );
    }

    #[test]
    fn rejoin_clears_suspicions_of_the_wiped_peer_only() {
        let m = Metrics::new();
        m.suspect(1, SuspicionKind::BadMac);
        m.suspect(1, SuspicionKind::BadChunk);
        m.suspect(3, SuspicionKind::Equivocation);
        assert_eq!(m.suspicions().len(), 2);

        // Peer 1 completes a wipe-and-rejoin: its pre-wipe evidence is
        // dropped, other peers' rows are untouched, and the monotone
        // aggregate counter keeps the history.
        m.clear_suspicions_of(1);
        let rows = m.suspicions();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].peer, 3);
        assert_eq!(rows[0].count(SuspicionKind::Equivocation), 1);
        assert_eq!(m.suspicions_total.get(), 3);

        // The clear itself is flight-recorded (kind=Recovery, a=MAX
        // sentinel, b=evidence dropped) so forensics can see it.
        let cleared: Vec<_> = m
            .flight()
            .events()
            .into_iter()
            .filter(|e| e.kind == FlightKind::Recovery && e.a == u64::MAX)
            .collect();
        assert_eq!(cleared.len(), 1);
        assert_eq!(cleared[0].peer, 1);
        assert_eq!(cleared[0].b, 2);

        // Clearing an unknown peer is a no-op, not a new flight event.
        m.clear_suspicions_of(9);
        assert_eq!(
            m.flight()
                .events()
                .iter()
                .filter(|e| e.kind == FlightKind::Recovery && e.a == u64::MAX)
                .count(),
            1
        );
        // Fresh evidence after the wipe accumulates from zero.
        m.suspect(1, SuspicionKind::Malformed);
        let rows = m.suspicions();
        assert_eq!(rows[0].peer, 1);
        assert_eq!(rows[0].total(), 1);
    }

    #[test]
    fn quorum_annotations_roundtrip_through_jsonl() {
        let m = Metrics::new();
        m.set_time(10);
        m.span_open("ab:0/m:0:0/rb", Layer::Rb);
        m.set_time(25);
        m.span_annotate("ab:0/m:0:0/rb", SpanAnnotation::QuorumMet, 3);
        m.span_open("ab:0/r:0/mvc/bc", Layer::Bc);
        m.set_time(40);
        m.span_annotate(
            "ab:0/r:0/mvc/bc",
            SpanAnnotation::RoundQuorum,
            pack_round_quorum(2, 1),
        );
        m.span_close("ab:0/r:0/mvc/bc");
        m.span_close("ab:0/m:0:0/rb");
        let dump = spans_to_jsonl(&m.spans());
        assert!(dump.contains("quorum-met"));
        assert!(dump.contains("round-quorum"));
        let parsed = spans_from_jsonl(&dump).unwrap();
        assert_eq!(parsed, m.spans());
        let note = parsed
            .iter()
            .find(|s| s.path == "ab:0/r:0/mvc/bc")
            .unwrap()
            .annotations[0];
        assert_eq!(unpack_round_quorum(note.value), (2, 1));
    }
}
