//! Protocol metrics and event tracing for the RITAS stack.
//!
//! The paper's whole evaluation (§4) is built on per-layer measurement —
//! latency and throughput per protocol, rounds per consensus instance,
//! messages per broadcast. This crate is the reproduction's counterpart:
//! a zero-dependency, thread-safe registry of counters, gauges and
//! fixed-bucket histograms, plus a bounded structured event-trace ring.
//!
//! Design rules:
//!
//! * **Cheap by default.** Counters and gauges are single relaxed
//!   atomics; an unobserved `Metrics` handle costs one `Arc` clone per
//!   protocol instance and a few atomic adds per message.
//! * **Static registry.** Every metric is a named field, not a
//!   string-keyed map — no hashing on the hot path, and the snapshot
//!   schema is stable by construction.
//! * **Driver-injected time.** Protocol state machines are sans-io and
//!   have no clock; drivers (the threaded node, the discrete-event
//!   simulator) stamp the registry clock via [`Metrics::set_time`], so
//!   trace timestamps are wall nanoseconds in production and virtual
//!   nanoseconds in simulation.
//!
//! A [`MetricsSnapshot`] freezes everything into plain data with stable
//! text and JSON renderings, so tests and fault-injection harnesses can
//! assert on protocol-level invariants (e.g. "the crashed victim added
//! zero consensus rounds for the correct majority") instead of timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value instrument (queue depths, live instance counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is above the current one.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` counts values whose
/// power-of-two magnitude is `i` (bucket upper bound `2^i − 1`…), with
/// the last bucket absorbing everything larger.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket histogram with power-of-two bucket bounds.
///
/// Bucket `i` counts values `v` with `2^(i−1) ≤ v < 2^i` (bucket 0
/// counts `v == 0`), which spans `[0, 2^39)` — enough for nanosecond
/// latencies up to ~9 minutes and any size/count this stack produces.
/// Recording is two relaxed atomic adds plus an atomic max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket that counts `v`.
    pub fn bucket_index(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (`None` for the overflow
    /// bucket).
    pub fn bucket_bound(i: usize) -> Option<u64> {
        if i + 1 >= HISTOGRAM_BUCKETS {
            None
        } else {
            Some((1u64 << i) - 1)
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Freezes the histogram into plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

/// Frozen histogram data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram::bucket_bound`]).
    pub buckets: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The stack layer an event or metric belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Reliable channels (§2.1): frames, bytes, MAC verdicts.
    Transport,
    /// Reliable broadcast (§2.3, Bracha).
    Rb,
    /// Echo broadcast (§2.3, Reiter / Toueg).
    Eb,
    /// Binary consensus (§2.4, Bracha).
    Bc,
    /// Multi-valued consensus (§2.5).
    Mvc,
    /// Vector consensus (§2.6).
    Vc,
    /// Atomic broadcast (§2.7).
    Ab,
    /// The stack frame router and out-of-context buffers (§3.4).
    Stack,
    /// The threaded node runtime (§3).
    Node,
}

impl Layer {
    /// Stable lowercase name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Transport => "transport",
            Layer::Rb => "rb",
            Layer::Eb => "eb",
            Layer::Bc => "bc",
            Layer::Mvc => "mvc",
            Layer::Vc => "vc",
            Layer::Ab => "ab",
            Layer::Stack => "stack",
            Layer::Node => "node",
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (records causal order even when the
    /// injected clock stands still).
    pub seq: u64,
    /// Driver-injected timestamp (wall ns for the node runtime, virtual
    /// ns in simulation, 0 when no driver stamps the clock).
    pub timestamp: u64,
    /// Which protocol instance emitted the event (stable debug key).
    pub instance_id: String,
    /// The emitting layer.
    pub layer: Layer,
    /// Event kind, e.g. `"deliver"`, `"coin-flip"`, `"decide"`.
    pub kind: &'static str,
    /// Protocol round, when the layer has rounds (0 otherwise).
    pub round: u32,
}

/// Default capacity of the trace ring.
pub const TRACE_CAPACITY: usize = 1024;

#[derive(Debug)]
struct TraceRing {
    events: Mutex<std::collections::VecDeque<TraceEvent>>,
    capacity: usize,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        TraceRing {
            events: Mutex::new(std::collections::VecDeque::with_capacity(capacity.min(64))),
            capacity,
        }
    }

    fn push(&self, event: TraceEvent) {
        let mut q = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event);
    }

    fn to_vec(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

/// The metric registry: every instrument the stack exposes, as public
/// named fields grouped by layer.
#[derive(Debug)]
pub struct MetricsInner {
    // ---- transport (§2.1) ----
    /// Frames handed to the network.
    pub transport_frames_sent: Counter,
    /// Frames received from the network (before authentication).
    pub transport_frames_recv: Counter,
    /// Payload bytes handed to the network.
    pub transport_bytes_sent: Counter,
    /// Payload bytes received from the network.
    pub transport_bytes_recv: Counter,
    /// Inbound frames dropped by MAC/ICV or anti-replay checks.
    pub transport_mac_rejected: Counter,

    // ---- reliable broadcast (§2.3) ----
    /// INIT messages received.
    pub rb_init_recv: Counter,
    /// ECHO messages received.
    pub rb_echo_recv: Counter,
    /// READY messages received.
    pub rb_ready_recv: Counter,
    /// Payloads delivered by reliable broadcast instances.
    pub rb_delivered: Counter,

    // ---- echo broadcast (§2.3) ----
    /// INITIAL messages received.
    pub eb_init_recv: Counter,
    /// Echo-vector messages received.
    pub eb_vect_recv: Counter,
    /// Echo-matrix messages received.
    pub eb_mat_recv: Counter,
    /// Payloads delivered by echo broadcast instances.
    pub eb_delivered: Counter,
    /// Vector/matrix MAC entries that failed verification.
    pub eb_mac_rejected: Counter,

    // ---- binary consensus (§2.4) ----
    /// Instances that proposed.
    pub bc_started: Counter,
    /// Instances that decided.
    pub bc_decided: Counter,
    /// Local/shared coin flips performed.
    pub bc_coin_flips: Counter,
    /// Messages rejected by Bracha's validation rule.
    pub bc_rejected: Counter,
    /// Rounds needed per decided instance.
    pub bc_rounds: Histogram,

    // ---- multi-valued consensus (§2.5) ----
    /// Instances that proposed.
    pub mvc_started: Counter,
    /// Instances that decided a proposed value.
    pub mvc_decided_value: Counter,
    /// Instances that decided ⊥.
    pub mvc_decided_bottom: Counter,
    /// Size in bytes of VECT payloads broadcast (value + justification).
    pub mvc_vect_bytes: Histogram,

    // ---- vector consensus (§2.6) ----
    /// Instances that proposed.
    pub vc_started: Counter,
    /// Instances that decided.
    pub vc_decided: Counter,
    /// ⊥ entries across decided vectors.
    pub vc_bottom_entries: Counter,
    /// Agreement rounds needed per decided instance.
    pub vc_rounds: Histogram,

    // ---- atomic broadcast (§2.7) ----
    /// Messages a-broadcast locally.
    pub ab_broadcast: Counter,
    /// Messages a-delivered locally.
    pub ab_delivered: Counter,
    /// Agreement instances run (MVC decisions consumed).
    pub ab_agreements: Counter,
    /// Messages ordered per non-⊥ agreement (the paper's batching lever).
    pub ab_batch: Histogram,
    /// a-broadcast → a-deliver latency in driver nanoseconds (own
    /// messages only).
    pub ab_latency_ns: Histogram,

    // ---- stack / node (§3) ----
    /// Frames dispatched through the stack router.
    pub stack_frames_in: Counter,
    /// Messages parked in the out-of-context buffer (§3.4).
    pub stack_ooc_parked: Counter,
    /// Out-of-context messages dropped by the buffer caps.
    pub stack_ooc_dropped: Counter,
    /// Faults attributed to peers (equivocation, bad MACs, garbage…).
    pub faults_detected: Counter,
    /// Live protocol instances in the stack.
    pub stack_instances: Gauge,
    /// Messages currently parked out-of-context.
    pub stack_ooc_buffered: Gauge,
    /// High-water mark of the out-of-context buffer.
    pub stack_ooc_high_water: Gauge,

    trace: TraceRing,
    clock: AtomicU64,
    seq: AtomicU64,
}

impl Default for MetricsInner {
    fn default() -> Self {
        MetricsInner {
            transport_frames_sent: Counter::default(),
            transport_frames_recv: Counter::default(),
            transport_bytes_sent: Counter::default(),
            transport_bytes_recv: Counter::default(),
            transport_mac_rejected: Counter::default(),
            rb_init_recv: Counter::default(),
            rb_echo_recv: Counter::default(),
            rb_ready_recv: Counter::default(),
            rb_delivered: Counter::default(),
            eb_init_recv: Counter::default(),
            eb_vect_recv: Counter::default(),
            eb_mat_recv: Counter::default(),
            eb_delivered: Counter::default(),
            eb_mac_rejected: Counter::default(),
            bc_started: Counter::default(),
            bc_decided: Counter::default(),
            bc_coin_flips: Counter::default(),
            bc_rejected: Counter::default(),
            bc_rounds: Histogram::default(),
            mvc_started: Counter::default(),
            mvc_decided_value: Counter::default(),
            mvc_decided_bottom: Counter::default(),
            mvc_vect_bytes: Histogram::default(),
            vc_started: Counter::default(),
            vc_decided: Counter::default(),
            vc_bottom_entries: Counter::default(),
            vc_rounds: Histogram::default(),
            ab_broadcast: Counter::default(),
            ab_delivered: Counter::default(),
            ab_agreements: Counter::default(),
            ab_batch: Histogram::default(),
            ab_latency_ns: Histogram::default(),
            stack_frames_in: Counter::default(),
            stack_ooc_parked: Counter::default(),
            stack_ooc_dropped: Counter::default(),
            faults_detected: Counter::default(),
            stack_instances: Gauge::default(),
            stack_ooc_buffered: Gauge::default(),
            stack_ooc_high_water: Gauge::default(),
            trace: TraceRing::new(TRACE_CAPACITY),
            clock: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        }
    }
}

/// A cheaply cloneable handle to one process's metric registry.
///
/// Every protocol instance in a stack shares the stack's handle; a
/// free-standing instance created without one gets its own private
/// registry, so instrumentation code never needs a null check.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<MetricsInner>,
}

impl Metrics {
    /// Creates a fresh registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Injects the driver's current time (wall ns or virtual ns) used to
    /// stamp subsequent trace events.
    pub fn set_time(&self, now: u64) {
        self.inner.clock.store(now, Ordering::Relaxed);
    }

    /// The last injected driver time.
    pub fn time(&self) -> u64 {
        self.inner.clock.load(Ordering::Relaxed)
    }

    /// Records a structured trace event.
    pub fn trace(
        &self,
        layer: Layer,
        kind: &'static str,
        instance_id: impl Into<String>,
        round: u32,
    ) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.inner.trace.push(TraceEvent {
            seq,
            timestamp: self.time(),
            instance_id: instance_id.into(),
            layer,
            kind,
            round,
        });
    }

    /// Freezes every instrument into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = &*self.inner;
        let mut counters = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        macro_rules! counter {
            ($($name:ident),* $(,)?) => {
                $(counters.insert(stringify!($name), m.$name.get());)*
            };
        }
        macro_rules! histogram {
            ($($name:ident),* $(,)?) => {
                $(histograms.insert(stringify!($name), m.$name.snapshot());)*
            };
        }
        counter!(
            transport_frames_sent,
            transport_frames_recv,
            transport_bytes_sent,
            transport_bytes_recv,
            transport_mac_rejected,
            rb_init_recv,
            rb_echo_recv,
            rb_ready_recv,
            rb_delivered,
            eb_init_recv,
            eb_vect_recv,
            eb_mat_recv,
            eb_delivered,
            eb_mac_rejected,
            bc_started,
            bc_decided,
            bc_coin_flips,
            bc_rejected,
            mvc_started,
            mvc_decided_value,
            mvc_decided_bottom,
            vc_started,
            vc_decided,
            vc_bottom_entries,
            ab_broadcast,
            ab_delivered,
            ab_agreements,
            stack_frames_in,
            stack_ooc_parked,
            stack_ooc_dropped,
            faults_detected,
        );
        // Gauges join the counter map (point-in-time values).
        counters.insert("stack_instances", m.stack_instances.get());
        counters.insert("stack_ooc_buffered", m.stack_ooc_buffered.get());
        counters.insert("stack_ooc_high_water", m.stack_ooc_high_water.get());
        histogram!(
            bc_rounds,
            mvc_vect_bytes,
            vc_rounds,
            ab_batch,
            ab_latency_ns
        );
        MetricsSnapshot {
            counters,
            histograms,
            trace: m.trace.to_vec(),
        }
    }

    /// Direct access to the instruments (for instrumentation sites).
    pub fn raw(&self) -> &MetricsInner {
        &self.inner
    }
}

impl std::ops::Deref for Metrics {
    type Target = MetricsInner;

    fn deref(&self) -> &MetricsInner {
        &self.inner
    }
}

/// A frozen, serializable view of one process's metrics.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// All counters and gauges by stable name.
    pub counters: BTreeMap<&'static str, u64>,
    /// All histograms by stable name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
    /// The trace ring contents, oldest first.
    pub trace: Vec<TraceEvent>,
}

impl MetricsSnapshot {
    /// Value of a counter/gauge, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Whether every layer of the stack reported at least one event —
    /// the "the run actually exercised the whole stack" check used by
    /// integration tests.
    pub fn all_layers_active(&self) -> bool {
        self.counter("transport_frames_recv") > 0
            && self.counter("rb_echo_recv") + self.counter("rb_init_recv") > 0
            && self.counter("eb_init_recv") + self.counter("eb_vect_recv") > 0
            && self.counter("bc_decided") > 0
            && self.counter("mvc_started") > 0
            && self.counter("vc_started") + self.counter("ab_delivered") > 0
            && self.counter("ab_delivered") > 0
    }

    /// Renders a stable `name value` text dump (one line per counter,
    /// histograms as `name{count,sum,max,mean}`).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name}{{count={} sum={} max={} mean={:.1}}}",
                h.count,
                h.sum,
                h.max,
                h.mean()
            );
        }
        let _ = writeln!(out, "trace_events {}", self.trace.len());
        out
    }

    /// Renders the snapshot as a stable JSON object:
    /// `{"counters": {...}, "histograms": {...}, "trace": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.max
            );
            // Sparse rendering: [index, count] pairs for nonzero buckets.
            let mut first_bucket = true;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                let _ = write!(out, "[{i},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("},\"trace\":[");
        first = true;
        for e in &self.trace {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"seq\":{},\"t\":{},\"instance\":\"{}\",\"layer\":\"{}\",\"kind\":\"{}\",\"round\":{}}}",
                e.seq,
                e.timestamp,
                escape_json(&e.instance_id),
                e.layer.as_str(),
                escape_json(e.kind),
                e.round
            );
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let m = Metrics::new();
        m.rb_echo_recv.inc();
        m.rb_echo_recv.add(2);
        assert_eq!(m.rb_echo_recv.get(), 3);
        m.stack_instances.set(7);
        m.stack_instances.set_max(3);
        assert_eq!(m.stack_instances.get(), 7);
        m.stack_instances.set_max(11);
        assert_eq!(m.stack_instances.get(), 11);
    }

    #[test]
    fn histogram_bucket_bounds_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_bound(0), Some(0));
        assert_eq!(Histogram::bucket_bound(3), Some(7));
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_records_count_sum_max() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 251.5).abs() < 1e-9);
        // Values 2 and 3 share the [2, 3] bucket.
        assert_eq!(s.buckets[Histogram::bucket_index(2)], 2);
    }

    #[test]
    fn concurrent_counter_updates_do_not_lose_increments() {
        let m = Metrics::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        m.transport_frames_sent.inc();
                        m.ab_latency_ns.record(42);
                    }
                });
            }
        });
        assert_eq!(m.transport_frames_sent.get(), 80_000);
        assert_eq!(m.ab_latency_ns.count(), 80_000);
        assert_eq!(m.ab_latency_ns.sum(), 80_000 * 42);
    }

    #[test]
    fn clone_shares_the_registry() {
        let a = Metrics::new();
        let b = a.clone();
        b.bc_coin_flips.inc();
        assert_eq!(a.bc_coin_flips.get(), 1);
    }

    #[test]
    fn trace_ring_keeps_newest_events() {
        let m = Metrics::new();
        m.set_time(99);
        for i in 0..(TRACE_CAPACITY as u32 + 10) {
            m.trace(Layer::Bc, "round", format!("bc:{i}"), i);
        }
        let snap = m.snapshot();
        assert_eq!(snap.trace.len(), TRACE_CAPACITY);
        let first = &snap.trace[0];
        assert_eq!(first.round, 10); // 10 oldest evicted
        assert_eq!(first.timestamp, 99);
        let last = snap.trace.last().unwrap();
        assert_eq!(last.kind, "round");
        assert_eq!(last.layer, Layer::Bc);
        assert!(last.seq > first.seq);
    }

    #[test]
    fn snapshot_text_and_json_are_stable() {
        let m = Metrics::new();
        m.rb_delivered.add(4);
        m.bc_rounds.record(1);
        m.trace(Layer::Rb, "deliver", "rb:0:1", 0);
        let snap = m.snapshot();
        let text = snap.to_text();
        assert!(text.contains("rb_delivered 4"));
        assert!(text.contains("bc_rounds{count=1 sum=1 max=1 mean=1.0}"));
        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"rb_delivered\":4"));
        assert!(json.contains("\"bc_rounds\":{\"count\":1"));
        assert!(json.contains("\"instance\":\"rb:0:1\""));
        // Deterministic: same snapshot renders identically.
        assert_eq!(json, snap.to_json());
    }

    #[test]
    fn json_escapes_hostile_instance_ids() {
        let m = Metrics::new();
        m.trace(Layer::Stack, "park", "he said \"hi\"\\\n", 0);
        let json = m.snapshot().to_json();
        assert!(json.contains("he said \\\"hi\\\"\\\\\\u000a"));
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap.counter("does_not_exist"), 0);
        assert!(snap.histogram("nope").is_none());
        assert!(!snap.all_layers_active());
    }
}
