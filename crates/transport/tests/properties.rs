//! Property-based tests for the transport layer: AH sealing laws against
//! arbitrary payloads and tampering, wire codec roundtrips, and hub
//! delivery invariants.

use bytes::Bytes;
use proptest::prelude::*;
use ritas_crypto::KeyTable;
use ritas_transport::wire::{Reader, Writer};
use ritas_transport::{AuthConfig, AuthenticatedTransport, Hub, Transport};

proptest! {
    /// Any payload survives seal → network → open, and an attacker
    /// without the key cannot get an arbitrary forged frame accepted:
    /// the receiver silently drops it and only delivers honest traffic.
    #[test]
    fn ah_seal_open_and_forgery_rejection(
        payload in proptest::collection::vec(any::<u8>(), 0..300),
        forged in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let table = KeyTable::dealer(3, 77);
        let mut hub = Hub::new(3);
        let mut eps = hub.take_endpoints().into_iter();
        let a = AuthenticatedTransport::new(
            eps.next().unwrap(),
            AuthConfig::from_key_table(&table, 0),
        );
        let b = AuthenticatedTransport::new(
            eps.next().unwrap(),
            AuthConfig::from_key_table(&table, 1),
        );
        let attacker = eps.next().unwrap(); // raw endpoint, no keys

        // The attacker injects an arbitrary frame first…
        attacker.send(1, Bytes::from(forged)).unwrap();
        // …then an honest sealed frame goes through.
        a.send(1, Bytes::from(payload.clone())).unwrap();
        let (from, got) = b.recv().unwrap();
        prop_assert_eq!((from, got.as_ref()), (0usize, payload.as_slice()));
        prop_assert_eq!(b.rejected_frames(), 1);
    }

    /// Writer/Reader roundtrip arbitrary field sequences.
    #[test]
    fn wire_field_sequence_roundtrip(
        scalars in proptest::collection::vec(any::<u64>(), 0..10),
        blob in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut w = Writer::new();
        for s in &scalars {
            w.u64(*s);
        }
        w.bytes(&blob);
        let buf = w.freeze();
        let mut r = Reader::new(&buf);
        for s in &scalars {
            prop_assert_eq!(r.u64("s").unwrap(), *s);
        }
        let decoded = r.bytes("b").unwrap();
        prop_assert_eq!(decoded.as_ref(), blob.as_slice());
        r.finish().unwrap();
    }

    /// The hub delivers every sent frame exactly once per destination,
    /// regardless of the traffic mix.
    #[test]
    fn hub_exactly_once(sends in proptest::collection::vec((0usize..3, 0usize..3, any::<u32>()), 0..50)) {
        let mut hub = Hub::new(3);
        let eps = hub.take_endpoints();
        let mut expected = vec![Vec::new(); 3];
        for (from, to, tag) in &sends {
            eps[*from]
                .send(*to, Bytes::copy_from_slice(&tag.to_be_bytes()))
                .unwrap();
            expected[*to].push((*from, *tag));
        }
        for (to, exp) in expected.iter().enumerate() {
            let mut got = Vec::new();
            for _ in 0..exp.len() {
                let (from, p) = eps[to].recv().unwrap();
                got.push((from, u32::from_be_bytes(p.as_ref().try_into().unwrap())));
            }
            prop_assert!(eps[to].try_recv().is_none(), "extra frame at {}", to);
            // Per-sender order is preserved; cross-sender order may vary.
            for sender in 0..3 {
                let sent: Vec<u32> = exp.iter().filter(|(f, _)| *f == sender).map(|(_, t)| *t).collect();
                let recvd: Vec<u32> = got.iter().filter(|(f, _)| *f == sender).map(|(_, t)| *t).collect();
                prop_assert_eq!(sent, recvd);
            }
        }
    }
}
