//! A self-healing TCP mesh — the paper's deployment transport (§2.1:
//! "reliability is provided by TCP"), made *actually* reliable.
//!
//! A bare TCP connection only approximates the paper's reliable channel:
//! one RST, peer restart or transient partition severs the link forever
//! and silently voids the assumption every protocol above depends on.
//! This endpoint therefore runs a session layer (see [`crate::session`])
//! on every link:
//!
//! * frames carry per-link monotone **sequence numbers** and cumulative
//!   **acks**; sent frames stay in a bounded retransmission buffer until
//!   acknowledged, and the receive side dedups, so retransmission is
//!   idempotent to the stack;
//! * a lost connection moves the link to `Reconnecting`: outbound frames
//!   keep buffering while a dialer retries with **exponential backoff +
//!   jitter** and resumes the session with a MAC-authenticated handshake
//!   (pairwise `KeyTable` keys, replay-protected by a strictly increasing
//!   session epoch); after the resume, unacked frames are retransmitted;
//! * writes are **bounded** (write deadline + bounded buffer with
//!   backpressure): a stalled peer yields [`TransportError::LinkDown`],
//!   never an indefinitely blocked sender;
//! * every link exposes an explicit `Up` / `Reconnecting` / `Down`
//!   state machine via [`Transport::link_state`] and
//!   [`Transport::poll_link_event`].
//!
//! The mesh is established deterministically: the lower-id process dials
//! the higher-id one; the same dial direction is kept for reconnects.
//! Composes with [`crate::AuthenticatedTransport`] to reproduce the
//! paper's TCP+IPSec channel — the session layer sits *below* the AH
//! layer, so AH's anti-replay window sees each sealed frame exactly once
//! and in order, exactly as over an unbroken socket.

use crate::session::{encode_frame, Backoff, Hello, RetransmitBuffer, HELLO_LEN, SESSION_HDR};
use crate::wire::MAX_FRAME;
use crate::{LinkDownReason, LinkEvent, LinkState, ProcessId, Transport, TransportError};
use bytes::Bytes;
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};
use ritas_crypto::{KeyTable, SecretKey};
use ritas_metrics::{Layer, Metrics, SpanAnnotation};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timeout for one connect attempt and for each handshake read/write.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

/// Send an explicit ACK-only frame after this many unacknowledged
/// inbound frames (acks otherwise piggyback on outbound data).
const ACK_EVERY: u64 = 64;

/// Bound on the buffered link-event queue (oldest dropped beyond it).
const EVENT_QUEUE_CAP: usize = 1024;

/// Master seed for the fallback session-handshake keys used when
/// [`TcpConfig::keys`] is `None`. Shared by construction, so endpoints
/// without dealt keys still complete the handshake — without dealt keys
/// the resume handshake authenticates nothing, it only frames sessions.
const UNKEYED_SEED: u64 = 0x5345_5353_494F_4E30; // "SESSION0"

/// Tuning knobs for a [`TcpEndpoint`]'s session layer.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Pairwise session-handshake keys, indexed by peer id (use the
    /// `KeyTable` view of this process). `None` falls back to a fixed
    /// shared key: handshakes still frame sessions but authenticate
    /// nothing — fine for tests, not for deployment.
    pub keys: Option<Vec<SecretKey>>,
    /// Per-write deadline on link sockets; a write that cannot complete
    /// within it marks the link down (and the frame is retransmitted
    /// after the session resumes).
    pub write_timeout: Duration,
    /// How long [`Transport::send`] may wait for retransmission-buffer
    /// space before giving up with [`TransportError::LinkDown`].
    pub send_block: Duration,
    /// Retransmission-buffer bound in frames (per link).
    pub tx_buffer_frames: usize,
    /// Retransmission-buffer bound in payload bytes (per link).
    pub tx_buffer_bytes: usize,
    /// Minimum reconnect backoff delay.
    pub backoff_min: Duration,
    /// Maximum reconnect backoff delay.
    pub backoff_max: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            keys: None,
            write_timeout: Duration::from_secs(2),
            send_block: Duration::from_secs(1),
            tx_buffer_frames: 4096,
            tx_buffer_bytes: 32 * 1024 * 1024,
            backoff_min: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
        }
    }
}

/// Per-link mutable state, guarded by the link mutex.
struct LinkCore {
    state: LinkState,
    /// Write half of the live connection (`None` unless `Up`).
    writer: Option<TcpStream>,
    /// Sent-but-unacked frames, awaiting cumulative acks.
    buf: RetransmitBuffer,
    /// Last assigned outbound sequence number (first data frame is 1).
    tx_seq: u64,
    /// Highest contiguous inbound sequence delivered to the stack.
    rx_cum: u64,
    /// The `rx_cum` value last advertised to the peer.
    last_ack_sent: u64,
    /// Current session epoch (0 = never established).
    epoch: u64,
    /// Incremented on every connection install/teardown; readers carry
    /// the generation they were spawned under and exit on mismatch.
    generation: u64,
    /// Open outage span path, closed when the session resumes.
    down_span: Option<String>,
}

struct LinkShared {
    core: Mutex<LinkCore>,
    cond: Condvar,
}

struct Shared {
    me: ProcessId,
    n: usize,
    addrs: Vec<SocketAddr>,
    cfg: TcpConfig,
    /// Resolved handshake keys, one per peer (self index unused).
    keys: Vec<SecretKey>,
    links: Vec<Option<LinkShared>>,
    inbound_tx: Sender<(ProcessId, Bytes)>,
    events: Mutex<VecDeque<LinkEvent>>,
    metrics: Mutex<Metrics>,
    up_count: AtomicUsize,
    closed: AtomicBool,
}

impl Shared {
    fn link(&self, peer: ProcessId) -> &LinkShared {
        self.links[peer].as_ref().expect("link exists")
    }

    fn metrics(&self) -> Metrics {
        self.metrics.lock().clone()
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    fn push_event(&self, event: LinkEvent) {
        let mut q = self.events.lock();
        if q.len() == EVENT_QUEUE_CAP {
            q.pop_front();
        }
        q.push_back(event);
    }

    fn set_links_up_gauge(&self, metrics: &Metrics) {
        metrics
            .transport_links_up
            .set(self.up_count.load(Ordering::SeqCst) as u64);
    }
}

/// Marks an `Up` link as lost: tears down the connection, moves the link
/// to `Reconnecting` (buffered frames are kept for retransmission) and
/// opens an outage span. No-op unless the link is currently `Up`.
fn note_down_locked(shared: &Shared, peer: ProcessId, core: &mut LinkCore, metrics: &Metrics) {
    if !matches!(core.state, LinkState::Up) {
        return;
    }
    core.state = LinkState::Reconnecting;
    if let Some(w) = core.writer.take() {
        let _ = w.shutdown(Shutdown::Both);
    }
    core.generation += 1;
    shared.up_count.fetch_sub(1, Ordering::SeqCst);
    shared.set_links_up_gauge(metrics);
    metrics.transport_link_down_total.inc();
    let path = format!("link:{}-{}/out:{}", shared.me, peer, core.generation);
    metrics.span_open(path.clone(), Layer::Transport);
    metrics.span_annotate(&path, SpanAnnotation::LinkOutage, core.epoch);
    core.down_span = Some(path);
    shared.push_event(LinkEvent {
        peer,
        state: LinkState::Reconnecting,
        epoch: core.epoch,
    });
    shared.link(peer).cond.notify_all();
}

/// Marks a link terminally down (no further reconnection attempts).
fn terminal_down_locked(
    shared: &Shared,
    peer: ProcessId,
    core: &mut LinkCore,
    metrics: &Metrics,
    reason: LinkDownReason,
) {
    if matches!(core.state, LinkState::Down(_)) {
        return;
    }
    if matches!(core.state, LinkState::Up) {
        shared.up_count.fetch_sub(1, Ordering::SeqCst);
        shared.set_links_up_gauge(metrics);
    }
    metrics.transport_link_down_total.inc();
    core.state = LinkState::Down(reason);
    if let Some(w) = core.writer.take() {
        let _ = w.shutdown(Shutdown::Both);
    }
    core.generation += 1;
    shared.push_event(LinkEvent {
        peer,
        state: LinkState::Down(reason),
        epoch: core.epoch,
    });
    shared.link(peer).cond.notify_all();
}

/// Reader-thread entry to `note_down_locked`, guarded by the generation
/// the reader was spawned under (a superseded reader must not tear down
/// the connection that replaced its own).
fn note_down(shared: &Arc<Shared>, peer: ProcessId, generation: u64) {
    let metrics = shared.metrics();
    let link = shared.link(peer);
    let mut core = link.core.lock();
    if core.generation == generation {
        note_down_locked(shared, peer, &mut core, &metrics);
    }
}

/// Installs a freshly handshaken connection on the link: prunes acked
/// frames, retransmits the rest, transitions to `Up` and spawns the
/// reader. Rejects stale epochs (the defense against replayed hellos).
fn install(
    shared: &Arc<Shared>,
    peer: ProcessId,
    stream: TcpStream,
    epoch: u64,
    peer_rx_cum: u64,
) -> std::io::Result<()> {
    stream.set_read_timeout(None)?;
    stream.set_write_timeout(Some(shared.cfg.write_timeout))?;
    let reader = stream.try_clone()?;
    let metrics = shared.metrics();
    let link = shared.link(peer);
    let mut core = link.core.lock();
    if shared.is_closed() || matches!(core.state, LinkState::Down(_)) || epoch <= core.epoch {
        let _ = stream.shutdown(Shutdown::Both);
        return Ok(());
    }
    if matches!(core.state, LinkState::Up) {
        // The peer re-dialed while we still considered the old connection
        // live (half-open failure): replace it.
        if let Some(w) = core.writer.take() {
            let _ = w.shutdown(Shutdown::Both);
        }
        shared.up_count.fetch_sub(1, Ordering::SeqCst);
    }
    let resumed = core.epoch > 0;
    core.epoch = epoch;
    core.generation += 1;
    let generation = core.generation;
    core.buf.ack(peer_rx_cum);
    core.state = LinkState::Up;
    core.writer = Some(stream);
    shared.up_count.fetch_add(1, Ordering::SeqCst);
    shared.set_links_up_gauge(&metrics);

    // Retransmit everything the peer has not acknowledged, with the
    // current cumulative ack piggybacked.
    let mut retransmitted = 0u64;
    let mut write_failed = false;
    {
        let mut w = core.writer.as_ref().expect("writer just installed");
        for (seq, payload) in core.buf.iter() {
            if w.write_all(&encode_frame(seq, core.rx_cum, payload))
                .is_err()
            {
                write_failed = true;
                break;
            }
            retransmitted += 1;
        }
    }
    core.last_ack_sent = core.rx_cum;
    if resumed {
        metrics.transport_reconnects_total.inc();
        metrics.transport_retransmits_total.add(retransmitted);
        if let Some(path) = core.down_span.take() {
            metrics.span_close(&path);
        }
    }
    shared.push_event(LinkEvent {
        peer,
        state: LinkState::Up,
        epoch,
    });
    let shared2 = Arc::clone(shared);
    std::thread::spawn(move || reader_loop(shared2, peer, reader, generation));
    link.cond.notify_all();
    if write_failed {
        note_down_locked(shared, peer, &mut core, &metrics);
    }
    Ok(())
}

/// Per-connection reader: reassembles session frames, acks the peer's
/// acks, dedups retransmissions and delivers in-sequence payloads.
fn reader_loop(shared: Arc<Shared>, peer: ProcessId, mut stream: TcpStream, generation: u64) {
    loop {
        let mut len4 = [0u8; 4];
        if stream.read_exact(&mut len4).is_err() {
            note_down(&shared, peer, generation);
            return;
        }
        let len = u32::from_be_bytes(len4) as usize;
        if !(SESSION_HDR..=MAX_FRAME).contains(&len) {
            // A peer violating the framing gets its connection dropped;
            // the session layer will attempt a clean resume.
            note_down(&shared, peer, generation);
            return;
        }
        let mut buf = vec![0u8; len];
        if stream.read_exact(&mut buf).is_err() {
            note_down(&shared, peer, generation);
            return;
        }
        let seq = u64::from_be_bytes(buf[..8].try_into().expect("8 bytes"));
        let ack = u64::from_be_bytes(buf[8..16].try_into().expect("8 bytes"));
        let payload = Bytes::from(buf).slice(SESSION_HDR..);

        let metrics = shared.metrics();
        let link = shared.link(peer);
        let mut core = link.core.lock();
        if core.generation != generation {
            return; // superseded by a newer connection
        }
        if core.buf.ack(ack) > 0 {
            link.cond.notify_all(); // space freed: wake backpressured senders
        }
        if seq == 0 {
            // ACK-only control frame
        } else if seq <= core.rx_cum {
            metrics.transport_dup_dropped_total.inc(); // retransmission overlap
        } else if seq == core.rx_cum + 1 {
            core.rx_cum = seq;
            // Deliver while holding the link lock, and *before* any ack
            // write can fail: once `rx_cum` covers this frame the peer
            // will never retransmit it, so returning without delivering
            // here would lose it. The lock also stops a newer-generation
            // reader from slipping a retransmitted successor into the
            // channel between our `rx_cum` advance and our delivery.
            if shared.inbound_tx.send((peer, payload)).is_err() {
                return;
            }
            if core.rx_cum - core.last_ack_sent >= ACK_EVERY {
                let frame = encode_frame(0, core.rx_cum, &[]);
                let ok = {
                    let mut w = core.writer.as_ref().expect("writer when Up");
                    w.write_all(&frame).is_ok()
                };
                if ok {
                    core.last_ack_sent = core.rx_cum;
                } else {
                    note_down_locked(&shared, peer, &mut core, &metrics);
                    return;
                }
            }
        } else {
            // Sequence gap: the peer lost its session state (restart,
            // or Byzantine). Retransmission can no longer uphold the
            // reliable-channel contract — give up on the link rather
            // than deliver with a hole.
            terminal_down_locked(
                &shared,
                peer,
                &mut core,
                &metrics,
                LinkDownReason::PeerStateLost,
            );
            return;
        }
        drop(core);
    }
}

/// Dial-direction reconnect supervisor: while the link to `peer` is not
/// `Up`, keep dialing with exponential backoff + jitter and resume the
/// session. Exits when the endpoint closes or the link goes terminal.
fn dial_supervisor(shared: Arc<Shared>, peer: ProcessId) {
    let seed = ((shared.me as u64) << 32) ^ (peer as u64) ^ 0x9E37_79B9_7F4A_7C15;
    let mut backoff = Backoff::new(shared.cfg.backoff_min, shared.cfg.backoff_max, seed);
    loop {
        // Wait until the link needs (re)establishing.
        {
            let link = shared.link(peer);
            let mut core = link.core.lock();
            loop {
                if shared.is_closed() {
                    return;
                }
                match core.state {
                    LinkState::Up => {
                        link.cond.wait_for(&mut core, Duration::from_millis(200));
                    }
                    LinkState::Reconnecting => break,
                    LinkState::Down(_) => return,
                }
            }
        }
        match dial_once(&shared, peer) {
            Ok(true) => backoff.reset(),
            Ok(false) => return, // closed or terminal
            Err(_) => std::thread::sleep(backoff.next_delay()),
        }
    }
}

/// One dial + session-resume attempt. `Ok(true)` on success, `Ok(false)`
/// when the link no longer wants a connection, `Err` to back off.
fn dial_once(shared: &Arc<Shared>, peer: ProcessId) -> std::io::Result<bool> {
    let (epoch, rx_cum) = {
        let core = shared.link(peer).core.lock();
        if !matches!(core.state, LinkState::Reconnecting) || shared.is_closed() {
            return Ok(false);
        }
        (core.epoch + 1, core.rx_cum)
    };
    let stream = TcpStream::connect_timeout(&shared.addrs[peer], HANDSHAKE_TIMEOUT)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    stream.set_write_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let key = &shared.keys[peer];
    let hello = Hello {
        from: shared.me,
        to: peer,
        epoch,
        rx_cum,
    };
    let mut stream_ref = &stream;
    stream_ref.write_all(&hello.encode(key, false))?;
    let mut buf = [0u8; HELLO_LEN];
    stream_ref.read_exact(&mut buf)?;
    let (hello_ack, mac) =
        Hello::parse(&buf, true).ok_or_else(|| std::io::Error::other("malformed hello-ack"))?;
    if hello_ack.from != peer
        || hello_ack.to != shared.me
        || hello_ack.epoch != epoch
        || !hello_ack.verify(&mac, key, true)
    {
        return Err(std::io::Error::other("hello-ack rejected"));
    }
    install(shared, peer, stream, epoch, hello_ack.rx_cum)?;
    Ok(true)
}

/// Accept-direction handshake for one inbound connection: authenticate
/// the hello, enforce epoch monotonicity (replay defense), answer with
/// our cumulative sequence and install the session.
fn accept_handshake(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).is_err()
        || stream.set_write_timeout(Some(HANDSHAKE_TIMEOUT)).is_err()
    {
        return;
    }
    let mut stream_ref = &stream;
    let mut buf = [0u8; HELLO_LEN];
    if stream_ref.read_exact(&mut buf).is_err() {
        return;
    }
    let Some((hello, mac)) = Hello::parse(&buf, false) else {
        return;
    };
    // Dial direction is fixed: only lower-id peers dial us.
    if hello.to != shared.me || hello.from >= shared.me {
        return;
    }
    let key = &shared.keys[hello.from];
    if !hello.verify(&mac, key, false) {
        return;
    }
    let rx_cum = {
        let core = shared.link(hello.from).core.lock();
        // A stale epoch is a replayed or superseded hello: drop the
        // connection without touching link state (a replay must not be
        // able to take a healthy link down).
        if hello.epoch <= core.epoch || matches!(core.state, LinkState::Down(_)) {
            return;
        }
        core.rx_cum
    };
    let hello_ack = Hello {
        from: shared.me,
        to: hello.from,
        epoch: hello.epoch,
        rx_cum,
    };
    if stream_ref.write_all(&hello_ack.encode(key, true)).is_err() {
        return;
    }
    let _ = install(&shared, hello.from, stream, hello.epoch, hello.rx_cum);
}

/// Accept loop: hands each inbound connection to a handshake thread.
/// Runs for the endpoint's whole lifetime (reconnects arrive here too).
fn acceptor_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.is_closed() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared2 = Arc::clone(&shared);
                std::thread::spawn(move || accept_handshake(shared2, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One process's endpoint on a self-healing TCP full mesh.
///
/// # Example
///
/// ```
/// use ritas_transport::tcp::TcpEndpoint;
/// use ritas_transport::Transport;
/// use bytes::Bytes;
///
/// let endpoints = TcpEndpoint::ephemeral_mesh(4, std::time::Duration::from_secs(5))?;
/// endpoints[0].send(1, Bytes::from_static(b"over tcp"))?;
/// let (from, payload) = endpoints[1].recv()?;
/// assert_eq!((from, payload.as_ref()), (0, &b"over tcp"[..]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TcpEndpoint {
    shared: Arc<Shared>,
    inbound: Receiver<(ProcessId, Bytes)>,
}

impl core::fmt::Debug for TcpEndpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TcpEndpoint")
            .field("me", &self.shared.me)
            .field("n", &self.shared.n)
            .finish_non_exhaustive()
    }
}

impl TcpEndpoint {
    /// Establishes the mesh for process `me` using a pre-bound listener
    /// and the address list of all processes (`addrs[me]` must be the
    /// listener's address). Blocks until every link is up or `timeout`
    /// expires. Uses [`TcpConfig::default`] — see
    /// [`TcpEndpoint::establish_with`] to supply session keys and tuning.
    ///
    /// # Errors
    ///
    /// I/O errors from binding/dialing, or `TimedOut` if the mesh did not
    /// come up in time.
    pub fn establish(
        me: ProcessId,
        listener: TcpListener,
        addrs: &[SocketAddr],
        timeout: Duration,
    ) -> std::io::Result<Self> {
        Self::establish_with(me, listener, addrs, timeout, TcpConfig::default())
    }

    /// [`TcpEndpoint::establish`] with an explicit [`TcpConfig`].
    ///
    /// # Errors
    ///
    /// As [`TcpEndpoint::establish`].
    pub fn establish_with(
        me: ProcessId,
        listener: TcpListener,
        addrs: &[SocketAddr],
        timeout: Duration,
        cfg: TcpConfig,
    ) -> std::io::Result<Self> {
        let n = addrs.len();
        assert!(me < n, "me out of range");
        if let Some(keys) = &cfg.keys {
            assert_eq!(keys.len(), n, "need one session key slot per process");
        }
        let deadline = Instant::now() + timeout;
        listener.set_nonblocking(true)?;

        let keys = match &cfg.keys {
            Some(keys) => keys.clone(),
            None => {
                let view = KeyTable::dealer(n, UNKEYED_SEED).view_of(me);
                (0..n).map(|j| view.key_for(j)).collect()
            }
        };
        let (inbound_tx, inbound_rx) = bounded::<(ProcessId, Bytes)>(64 * 1024);
        let links = (0..n)
            .map(|peer| {
                (peer != me).then(|| LinkShared {
                    core: Mutex::new(LinkCore {
                        state: LinkState::Reconnecting,
                        writer: None,
                        buf: RetransmitBuffer::new(cfg.tx_buffer_frames, cfg.tx_buffer_bytes),
                        tx_seq: 0,
                        rx_cum: 0,
                        last_ack_sent: 0,
                        epoch: 0,
                        generation: 0,
                        down_span: None,
                    }),
                    cond: Condvar::new(),
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            me,
            n,
            addrs: addrs.to_vec(),
            cfg,
            keys,
            links,
            inbound_tx,
            events: Mutex::new(VecDeque::new()),
            metrics: Mutex::new(Metrics::default()),
            up_count: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        });

        {
            let shared2 = Arc::clone(&shared);
            std::thread::spawn(move || acceptor_loop(shared2, listener));
        }
        for peer in me + 1..n {
            let shared2 = Arc::clone(&shared);
            std::thread::spawn(move || dial_supervisor(shared2, peer));
        }

        let endpoint = TcpEndpoint {
            shared,
            inbound: inbound_rx,
        };
        // Initial establishment is just "every link reached Up once"
        // (epoch 0 means a link never completed its first handshake).
        let all_established = |shared: &Shared| {
            (0..n)
                .filter(|&p| p != me)
                .all(|p| shared.link(p).core.lock().epoch > 0)
        };
        while !all_established(&endpoint.shared) {
            if Instant::now() >= deadline {
                endpoint.close();
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "mesh did not come up in time",
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(endpoint)
    }

    /// Test/demo convenience: builds a complete `n`-process mesh over
    /// ephemeral localhost ports, returning one endpoint per process.
    ///
    /// # Errors
    ///
    /// Propagates any bind/connect failure.
    pub fn ephemeral_mesh(n: usize, timeout: Duration) -> std::io::Result<Vec<TcpEndpoint>> {
        Self::ephemeral_mesh_with(n, timeout, |_| TcpConfig::default())
    }

    /// [`TcpEndpoint::ephemeral_mesh`] with a per-process [`TcpConfig`]
    /// (e.g. to hand each endpoint its `KeyTable` view for authenticated
    /// session resumes).
    ///
    /// # Errors
    ///
    /// Propagates any bind/connect failure.
    pub fn ephemeral_mesh_with(
        n: usize,
        timeout: Duration,
        config_for: impl Fn(ProcessId) -> TcpConfig,
    ) -> std::io::Result<Vec<TcpEndpoint>> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()?;
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(me, listener)| {
                let addrs = addrs.clone();
                let cfg = config_for(me);
                std::thread::spawn(move || {
                    TcpEndpoint::establish_with(me, listener, &addrs, timeout, cfg)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| std::io::Error::other("setup panicked"))?
            })
            .collect()
    }

    /// Attaches a shared metrics registry: reconnects, retransmissions,
    /// dup drops, backpressure and the per-link `Up` gauge are counted
    /// into it (the session layer's threads pick it up immediately).
    pub fn set_metrics(&self, metrics: Metrics) {
        self.shared.set_links_up_gauge(&metrics);
        *self.shared.metrics.lock() = metrics;
    }

    /// A cloneable chaos handle onto this endpoint's links, for fault
    /// injection in tests: kill live sockets and watch the session layer
    /// heal them.
    pub fn chaos_handle(&self) -> TcpChaosHandle {
        TcpChaosHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Closes the endpoint: every link goes `Down(Closed)`, subsequent
    /// operations fail with [`TransportError::Disconnected`] and the
    /// session threads exit.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        let metrics = self.shared.metrics();
        for peer in 0..self.shared.n {
            if peer == self.shared.me {
                continue;
            }
            let link = self.shared.link(peer);
            let mut core = link.core.lock();
            if matches!(core.state, LinkState::Up) {
                self.shared.up_count.fetch_sub(1, Ordering::SeqCst);
            }
            core.state = LinkState::Down(LinkDownReason::Closed);
            if let Some(w) = core.writer.take() {
                let _ = w.shutdown(Shutdown::Both);
            }
            core.generation += 1;
            link.cond.notify_all();
        }
        self.shared.set_links_up_gauge(&metrics);
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.close();
    }
}

/// A handle for killing live connections out from under a
/// [`TcpEndpoint`] — the chaos side of the session layer's contract.
/// Cloneable and independent of the endpoint's lifetime.
#[derive(Clone)]
pub struct TcpChaosHandle {
    shared: Arc<Shared>,
}

impl core::fmt::Debug for TcpChaosHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TcpChaosHandle")
            .field("me", &self.shared.me)
            .finish_non_exhaustive()
    }
}

impl TcpChaosHandle {
    /// Forcibly shuts down the live socket to `peer` (both directions,
    /// mid-stream — both ends observe a hard failure and must resume the
    /// session). Returns `true` if a live connection was killed.
    pub fn kill_link(&self, peer: ProcessId) -> bool {
        if peer >= self.shared.n || peer == self.shared.me {
            return false;
        }
        let core = self.shared.link(peer).core.lock();
        match &core.writer {
            Some(w) => {
                let _ = w.shutdown(Shutdown::Both);
                true
            }
            None => false,
        }
    }

    /// The current state of the link to `peer`.
    pub fn link_state(&self, peer: ProcessId) -> LinkState {
        if peer >= self.shared.n || peer == self.shared.me {
            return LinkState::Up;
        }
        self.shared.link(peer).core.lock().state
    }
}

impl Transport for TcpEndpoint {
    fn local_id(&self) -> ProcessId {
        self.shared.me
    }

    fn group_size(&self) -> usize {
        self.shared.n
    }

    fn send(&self, to: ProcessId, payload: Bytes) -> Result<(), TransportError> {
        let shared = &self.shared;
        if shared.is_closed() {
            return Err(TransportError::Disconnected);
        }
        if to >= shared.n {
            return Err(TransportError::UnknownPeer(to));
        }
        if to == shared.me {
            return shared
                .inbound_tx
                .send((shared.me, payload))
                .map_err(|_| TransportError::Disconnected);
        }
        let metrics = shared.metrics();
        let link = shared.link(to);
        let mut core = link.core.lock();
        let deadline = Instant::now() + shared.cfg.send_block;
        loop {
            if shared.is_closed() {
                return Err(TransportError::Disconnected);
            }
            if matches!(core.state, LinkState::Down(_)) {
                return Err(TransportError::LinkDown { peer: to });
            }
            if core.buf.has_space() {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                metrics.transport_send_backpressure_total.inc();
                return Err(TransportError::LinkDown { peer: to });
            }
            link.cond.wait_for(&mut core, deadline - now);
        }
        core.tx_seq += 1;
        let seq = core.tx_seq;
        core.buf.push(seq, payload.clone());
        if matches!(core.state, LinkState::Up) {
            let frame = encode_frame(seq, core.rx_cum, &payload);
            core.last_ack_sent = core.rx_cum;
            let ok = {
                let mut w = core.writer.as_ref().expect("writer when Up");
                w.write_all(&frame).is_ok()
            };
            if !ok {
                // The frame stays buffered: the session layer delivers it
                // after the resume, so the send still succeeds.
                note_down_locked(shared, to, &mut core, &metrics);
            }
        }
        Ok(())
    }

    fn recv(&self) -> Result<(ProcessId, Bytes), TransportError> {
        if self.shared.is_closed() {
            return Err(TransportError::Disconnected);
        }
        self.inbound
            .recv()
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(ProcessId, Bytes), TransportError> {
        if self.shared.is_closed() {
            return Err(TransportError::Disconnected);
        }
        self.inbound.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }

    fn link_state(&self, peer: ProcessId) -> LinkState {
        if peer >= self.shared.n || peer == self.shared.me {
            return LinkState::Up;
        }
        self.shared.link(peer).core.lock().state
    }

    fn poll_link_event(&self) -> Option<LinkEvent> {
        self.shared.events.lock().pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: usize) -> Vec<TcpEndpoint> {
        TcpEndpoint::ephemeral_mesh(n, Duration::from_secs(10)).expect("mesh")
    }

    #[test]
    fn point_to_point_roundtrip() {
        let eps = mesh(2);
        eps[0].send(1, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(eps[1].recv().unwrap(), (0, Bytes::from_static(b"ping")));
        eps[1].send(0, Bytes::from_static(b"pong")).unwrap();
        assert_eq!(eps[0].recv().unwrap(), (1, Bytes::from_static(b"pong")));
    }

    #[test]
    fn per_link_fifo() {
        let eps = mesh(2);
        for i in 0..200u32 {
            eps[0]
                .send(1, Bytes::copy_from_slice(&i.to_be_bytes()))
                .unwrap();
        }
        for i in 0..200u32 {
            let (_, p) = eps[1].recv().unwrap();
            assert_eq!(p.as_ref(), i.to_be_bytes());
        }
    }

    #[test]
    fn loopback_works() {
        let eps = mesh(2);
        eps[0].send(0, Bytes::from_static(b"self")).unwrap();
        assert_eq!(eps[0].recv().unwrap(), (0, Bytes::from_static(b"self")));
    }

    #[test]
    fn broadcast_to_full_mesh() {
        let eps = mesh(4);
        eps[2].send_all(Bytes::from_static(b"mesh")).unwrap();
        for ep in &eps {
            let (from, payload) = ep.recv().unwrap();
            assert_eq!((from, payload.as_ref()), (2, &b"mesh"[..]));
        }
    }

    #[test]
    fn large_frame_roundtrip() {
        let eps = mesh(2);
        let big = Bytes::from(vec![0xabu8; 1_000_000]);
        eps[0].send(1, big.clone()).unwrap();
        assert_eq!(eps[1].recv().unwrap(), (0, big));
    }

    #[test]
    fn recv_timeout_expires() {
        let eps = mesh(2);
        assert_eq!(
            eps[0].recv_timeout(Duration::from_millis(20)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn unknown_peer_rejected() {
        let eps = mesh(2);
        assert_eq!(
            eps[0].send(9, Bytes::new()).unwrap_err(),
            TransportError::UnknownPeer(9)
        );
    }

    #[test]
    fn close_disconnects() {
        let eps = mesh(2);
        eps[0].close();
        assert_eq!(eps[0].recv().unwrap_err(), TransportError::Disconnected);
        assert_eq!(
            eps[0].send(1, Bytes::new()).unwrap_err(),
            TransportError::Disconnected
        );
        assert_eq!(
            eps[0].link_state(1),
            LinkState::Down(LinkDownReason::Closed)
        );
    }

    #[test]
    fn authenticated_over_tcp() {
        use crate::{AuthConfig, AuthenticatedTransport};
        use ritas_crypto::KeyTable;
        let table = KeyTable::dealer(2, 8);
        let mut eps = mesh(2).into_iter();
        let a =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 0));
        let b =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1));
        a.send(1, Bytes::from_static(b"sealed over tcp")).unwrap();
        assert_eq!(
            b.recv().unwrap(),
            (0, Bytes::from_static(b"sealed over tcp"))
        );
        assert_eq!(b.rejected_frames(), 0);
    }

    // ---- session-layer behavior ----

    /// Waits (bounded) until the link from `ep` to `peer` is Up again.
    fn await_up(chaos: &TcpChaosHandle, peer: ProcessId) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while chaos.link_state(peer) != LinkState::Up {
            assert!(Instant::now() < deadline, "link did not heal in time");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn link_survives_socket_kill_without_loss_or_dup() {
        let eps = mesh(2);
        let metrics = Metrics::default();
        eps[0].set_metrics(metrics.clone());
        let chaos = eps[0].chaos_handle();

        // Interleave sends with repeated socket kills; every payload must
        // arrive exactly once, in order.
        let total = 500u32;
        for i in 0..total {
            eps[0]
                .send(1, Bytes::copy_from_slice(&i.to_be_bytes()))
                .unwrap();
            if i % 100 == 50 {
                assert!(chaos.kill_link(1) || chaos.link_state(1) != LinkState::Up);
                await_up(&chaos, 1);
            }
        }
        for i in 0..total {
            let (from, p) = eps[1].recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(from, 0);
            assert_eq!(p.as_ref(), i.to_be_bytes(), "lost or reordered at {i}");
        }
        assert!(
            metrics.transport_reconnects_total.get() > 0,
            "kills should force session resumes"
        );
    }

    #[test]
    fn sends_buffer_through_reconnecting_state() {
        let eps = mesh(2);
        let chaos = eps[0].chaos_handle();
        assert!(chaos.kill_link(1));
        // Sends keep succeeding while the link heals in the background.
        for i in 0..50u32 {
            eps[0]
                .send(1, Bytes::copy_from_slice(&i.to_be_bytes()))
                .unwrap();
        }
        for i in 0..50u32 {
            let (_, p) = eps[1].recv_timeout(Duration::from_secs(10)).unwrap();
            assert_eq!(p.as_ref(), i.to_be_bytes());
        }
    }

    #[test]
    fn link_events_report_outage_and_recovery() {
        let eps = mesh(2);
        let chaos = eps[0].chaos_handle();
        // Drain establishment events first.
        while eps[0].poll_link_event().is_some() {}
        assert!(chaos.kill_link(1));
        await_up(&chaos, 1);
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_reconnecting = false;
        let mut saw_up = false;
        while !(saw_reconnecting && saw_up) {
            assert!(Instant::now() < deadline, "missing link events");
            match eps[0].poll_link_event() {
                Some(ev) => {
                    assert_eq!(ev.peer, 1);
                    match ev.state {
                        LinkState::Reconnecting => saw_reconnecting = true,
                        LinkState::Up => {
                            assert!(ev.epoch > 1, "recovery must advance the epoch");
                            saw_up = true;
                        }
                        LinkState::Down(_) => panic!("unexpected terminal state"),
                    }
                }
                None => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    #[test]
    fn backpressure_surfaces_link_down_when_buffer_fills() {
        let cfg = TcpConfig {
            tx_buffer_frames: 8,
            send_block: Duration::from_millis(50),
            ..TcpConfig::default()
        };
        let eps = TcpEndpoint::ephemeral_mesh_with(2, Duration::from_secs(10), |_| cfg.clone())
            .expect("mesh");
        // Sever the peer's acceptor too so the link cannot heal, then
        // fill the bounded buffer.
        eps[1].close();
        let err = loop {
            match eps[0].send(1, Bytes::from(vec![0u8; 1024])) {
                Ok(()) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err, TransportError::LinkDown { peer: 1 });
    }

    #[test]
    fn keyed_session_resume_works_end_to_end() {
        use ritas_crypto::KeyTable;
        let table = KeyTable::dealer(2, 99);
        let eps = TcpEndpoint::ephemeral_mesh_with(2, Duration::from_secs(10), |me| TcpConfig {
            keys: Some((0..2).map(|j| table.view_of(me).key_for(j)).collect()),
            ..TcpConfig::default()
        })
        .expect("mesh");
        let chaos = eps[0].chaos_handle();
        eps[0].send(1, Bytes::from_static(b"before")).unwrap();
        assert!(chaos.kill_link(1));
        await_up(&chaos, 1);
        eps[0].send(1, Bytes::from_static(b"after")).unwrap();
        assert_eq!(
            eps[1].recv_timeout(Duration::from_secs(10)).unwrap(),
            (0, Bytes::from_static(b"before"))
        );
        assert_eq!(
            eps[1].recv_timeout(Duration::from_secs(10)).unwrap(),
            (0, Bytes::from_static(b"after"))
        );
    }

    #[test]
    fn sequence_gap_marks_link_peer_state_lost() {
        // A raw fake peer that completes the handshake and then sends a
        // gapped sequence — the honest endpoint must refuse to resume.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let fake_addr = listener.local_addr().unwrap();
        let honest_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let honest_addr = honest_listener.local_addr().unwrap();
        // Honest endpoint is process 0; the fake peer is process 1, so
        // process 0 dials it.
        let fake = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut s = &stream;
            let mut buf = [0u8; HELLO_LEN];
            s.read_exact(&mut buf).unwrap();
            let (hello, _) = Hello::parse(&buf, false).unwrap();
            let view = KeyTable::dealer(2, UNKEYED_SEED).view_of(1);
            let key = view.key_for(0);
            let hello_ack = Hello {
                from: 1,
                to: 0,
                epoch: hello.epoch,
                rx_cum: 0,
            };
            s.write_all(&hello_ack.encode(&key, true)).unwrap();
            // seq 5 with nothing before it: an impossible resume.
            s.write_all(&encode_frame(5, 0, b"gap")).unwrap();
            // Hold the socket open until the honest side reacts.
            std::thread::sleep(Duration::from_millis(500));
        });
        let ep = TcpEndpoint::establish(
            0,
            honest_listener,
            &[honest_addr, fake_addr],
            Duration::from_secs(10),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if ep.link_state(1) == LinkState::Down(LinkDownReason::PeerStateLost) {
                break;
            }
            assert!(Instant::now() < deadline, "gap did not mark the link down");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            ep.send(1, Bytes::from_static(b"x")).unwrap_err(),
            TransportError::LinkDown { peer: 1 }
        );
        fake.join().unwrap();
    }
}
