//! A real TCP mesh — the paper's deployment transport (§2.1: "reliability
//! is provided by TCP").
//!
//! Each process listens on its configured address and the full mesh is
//! established deterministically: the lower-id process dials the
//! higher-id one (with retries while the peer is still binding), then
//! identifies itself with a one-shot handshake. Frames are length-
//! prefixed. Composes with [`crate::AuthenticatedTransport`] to reproduce
//! the paper's TCP+IPSec channel with real HMACs on a real socket.
//!
//! This transport exists so the stack can actually be deployed across
//! processes/hosts; the in-memory [`crate::Hub`] remains the default for
//! tests and simulation.

use crate::{ProcessId, Transport, TransportError};
use bytes::Bytes;
use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum accepted frame length (matches the wire codec's field cap plus
/// protocol headroom).
const MAX_FRAME: usize = 17 * 1024 * 1024;

/// Dial retry interval while a peer's listener is still coming up.
const DIAL_RETRY: Duration = Duration::from_millis(25);

/// One process's endpoint on a TCP full mesh.
///
/// # Example
///
/// ```
/// use ritas_transport::tcp::TcpEndpoint;
/// use ritas_transport::Transport;
/// use bytes::Bytes;
///
/// let endpoints = TcpEndpoint::ephemeral_mesh(4, std::time::Duration::from_secs(5))?;
/// endpoints[0].send(1, Bytes::from_static(b"over tcp"))?;
/// let (from, payload) = endpoints[1].recv()?;
/// assert_eq!((from, payload.as_ref()), (0, &b"over tcp"[..]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TcpEndpoint {
    me: ProcessId,
    n: usize,
    /// Write halves, one per peer (`None` at our own index).
    peers: Vec<Option<Mutex<TcpStream>>>,
    inbound: Receiver<(ProcessId, Bytes)>,
    /// Loopback injector (also keeps the channel open).
    loopback: Sender<(ProcessId, Bytes)>,
    closed: Arc<AtomicBool>,
}

impl core::fmt::Debug for TcpEndpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TcpEndpoint")
            .field("me", &self.me)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl TcpEndpoint {
    /// Establishes the mesh for process `me` using a pre-bound listener
    /// and the address list of all processes (`addrs[me]` must be the
    /// listener's address). Blocks until every link is up or `timeout`
    /// expires.
    ///
    /// # Errors
    ///
    /// I/O errors from binding/dialing, or `TimedOut` if the mesh did not
    /// come up in time.
    pub fn establish(
        me: ProcessId,
        listener: TcpListener,
        addrs: &[SocketAddr],
        timeout: Duration,
    ) -> std::io::Result<Self> {
        let n = addrs.len();
        assert!(me < n, "me out of range");
        let deadline = Instant::now() + timeout;
        listener.set_nonblocking(false)?;

        // Accept links from lower-id peers in a helper thread while we
        // dial higher-id peers; both sides handshake with their id.
        let accept_count = me; // peers 0..me dial us
        let acceptor =
            std::thread::spawn(move || -> std::io::Result<Vec<(ProcessId, TcpStream)>> {
                let mut got = Vec::with_capacity(accept_count);
                while got.len() < accept_count {
                    let (mut stream, _) = listener.accept()?;
                    stream.set_nodelay(true)?;
                    let mut id = [0u8; 4];
                    stream.read_exact(&mut id)?;
                    got.push((u32::from_be_bytes(id) as usize, stream));
                }
                Ok(got)
            });

        let mut streams: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        for (peer, addr) in addrs.iter().enumerate().skip(me + 1) {
            let mut stream = loop {
                match TcpStream::connect_timeout(addr, DIAL_RETRY.max(Duration::from_millis(100))) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(e);
                        }
                        std::thread::sleep(DIAL_RETRY);
                    }
                }
            };
            stream.set_nodelay(true)?;
            stream.write_all(&(me as u32).to_be_bytes())?;
            streams[peer] = Some(stream);
        }

        let accepted = acceptor
            .join()
            .map_err(|_| std::io::Error::other("acceptor panicked"))??;
        for (peer, stream) in accepted {
            if peer >= n || streams[peer].is_some() || peer == me {
                return Err(std::io::Error::other("bad peer handshake"));
            }
            streams[peer] = Some(stream);
        }

        // Spawn one reader per peer.
        let (tx, rx) = bounded::<(ProcessId, Bytes)>(64 * 1024);
        let closed = Arc::new(AtomicBool::new(false));
        let mut peers: Vec<Option<Mutex<TcpStream>>> = (0..n).map(|_| None).collect();
        for (peer, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            let reader = stream.try_clone()?;
            peers[peer] = Some(Mutex::new(stream));
            let tx = tx.clone();
            let closed = Arc::clone(&closed);
            std::thread::spawn(move || read_loop(peer, reader, tx, closed));
        }

        Ok(TcpEndpoint {
            me,
            n,
            peers,
            inbound: rx,
            loopback: tx,
            closed,
        })
    }

    /// Test/demo convenience: builds a complete `n`-process mesh over
    /// ephemeral localhost ports, returning one endpoint per process.
    ///
    /// # Errors
    ///
    /// Propagates any bind/connect failure.
    pub fn ephemeral_mesh(n: usize, timeout: Duration) -> std::io::Result<Vec<TcpEndpoint>> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()?;
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(me, listener)| {
                let addrs = addrs.clone();
                std::thread::spawn(move || TcpEndpoint::establish(me, listener, &addrs, timeout))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| std::io::Error::other("setup panicked"))?
            })
            .collect()
    }

    /// Closes the endpoint: subsequent operations fail with
    /// [`TransportError::Disconnected`] and reader threads exit.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        for peer in self.peers.iter().flatten() {
            let _ = peer.lock().shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.close();
    }
}

fn read_loop(
    peer: ProcessId,
    mut stream: TcpStream,
    tx: Sender<(ProcessId, Bytes)>,
    closed: Arc<AtomicBool>,
) {
    loop {
        if closed.load(Ordering::SeqCst) {
            return;
        }
        let mut len = [0u8; 4];
        if stream.read_exact(&mut len).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len) as usize;
        if len > MAX_FRAME {
            return; // a peer violating the framing is abandoned
        }
        let mut buf = vec![0u8; len];
        if stream.read_exact(&mut buf).is_err() {
            return;
        }
        if tx.send((peer, Bytes::from(buf))).is_err() {
            return;
        }
    }
}

impl Transport for TcpEndpoint {
    fn local_id(&self) -> ProcessId {
        self.me
    }

    fn group_size(&self) -> usize {
        self.n
    }

    fn send(&self, to: ProcessId, payload: Bytes) -> Result<(), TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected);
        }
        if to >= self.n {
            return Err(TransportError::UnknownPeer(to));
        }
        if to == self.me {
            return self
                .loopback
                .send((self.me, payload))
                .map_err(|_| TransportError::Disconnected);
        }
        let Some(peer) = &self.peers[to] else {
            return Err(TransportError::UnknownPeer(to));
        };
        let mut stream = peer.lock();
        let len = (payload.len() as u32).to_be_bytes();
        stream
            .write_all(&len)
            .and_then(|()| stream.write_all(&payload))
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv(&self) -> Result<(ProcessId, Bytes), TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected);
        }
        self.inbound
            .recv()
            .map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(ProcessId, Bytes), TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(TransportError::Disconnected);
        }
        self.inbound.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: usize) -> Vec<TcpEndpoint> {
        TcpEndpoint::ephemeral_mesh(n, Duration::from_secs(10)).expect("mesh")
    }

    #[test]
    fn point_to_point_roundtrip() {
        let eps = mesh(2);
        eps[0].send(1, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(eps[1].recv().unwrap(), (0, Bytes::from_static(b"ping")));
        eps[1].send(0, Bytes::from_static(b"pong")).unwrap();
        assert_eq!(eps[0].recv().unwrap(), (1, Bytes::from_static(b"pong")));
    }

    #[test]
    fn per_link_fifo() {
        let eps = mesh(2);
        for i in 0..200u32 {
            eps[0]
                .send(1, Bytes::copy_from_slice(&i.to_be_bytes()))
                .unwrap();
        }
        for i in 0..200u32 {
            let (_, p) = eps[1].recv().unwrap();
            assert_eq!(p.as_ref(), i.to_be_bytes());
        }
    }

    #[test]
    fn loopback_works() {
        let eps = mesh(2);
        eps[0].send(0, Bytes::from_static(b"self")).unwrap();
        assert_eq!(eps[0].recv().unwrap(), (0, Bytes::from_static(b"self")));
    }

    #[test]
    fn broadcast_to_full_mesh() {
        let eps = mesh(4);
        eps[2].send_all(Bytes::from_static(b"mesh")).unwrap();
        for ep in &eps {
            let (from, payload) = ep.recv().unwrap();
            assert_eq!((from, payload.as_ref()), (2, &b"mesh"[..]));
        }
    }

    #[test]
    fn large_frame_roundtrip() {
        let eps = mesh(2);
        let big = Bytes::from(vec![0xabu8; 1_000_000]);
        eps[0].send(1, big.clone()).unwrap();
        assert_eq!(eps[1].recv().unwrap(), (0, big));
    }

    #[test]
    fn recv_timeout_expires() {
        let eps = mesh(2);
        assert_eq!(
            eps[0].recv_timeout(Duration::from_millis(20)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn unknown_peer_rejected() {
        let eps = mesh(2);
        assert_eq!(
            eps[0].send(9, Bytes::new()).unwrap_err(),
            TransportError::UnknownPeer(9)
        );
    }

    #[test]
    fn close_disconnects() {
        let eps = mesh(2);
        eps[0].close();
        assert_eq!(eps[0].recv().unwrap_err(), TransportError::Disconnected);
        assert_eq!(
            eps[0].send(1, Bytes::new()).unwrap_err(),
            TransportError::Disconnected
        );
    }

    #[test]
    fn authenticated_over_tcp() {
        use crate::{AuthConfig, AuthenticatedTransport};
        use ritas_crypto::KeyTable;
        let table = KeyTable::dealer(2, 8);
        let mut eps = mesh(2).into_iter();
        let a =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 0));
        let b =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1));
        a.send(1, Bytes::from_static(b"sealed over tcp")).unwrap();
        assert_eq!(
            b.recv().unwrap(),
            (0, Bytes::from_static(b"sealed over tcp"))
        );
        assert_eq!(b.rejected_frames(), 0);
    }
}
