//! The *reliable channel* substrate of the RITAS stack (paper §2.1, §3.2).
//!
//! The paper runs its protocols over point-to-point channels with two
//! properties:
//!
//! * **reliability** — messages between correct processes are eventually
//!   received (provided by TCP in the paper's testbed), and
//! * **integrity** — messages are not modified in the channel (provided by
//!   the IPSec Authentication Header protocol with HMAC-SHA-1-96).
//!
//! This crate substitutes the paper's TCP+IPSec deployment with an
//! in-process equivalent that preserves exactly those two properties:
//!
//! * [`hub`] — an in-memory full-mesh of reliable FIFO links built on
//!   crossbeam channels (per-link ordering and guaranteed delivery, like
//!   TCP), with crash and partition injection for tests;
//! * [`auth`] — an AH-style authentication layer reproducing the IPSec AH
//!   wire format (24-byte header: SPI, sequence number, 96-bit ICV) with
//!   HMAC-SHA-1-96 and anti-replay, so the +24-byte overhead measured in
//!   Table 1 is real in this reproduction too;
//! * [`wire`] — the byte-level codec helpers shared by every layer.
//!
//! The protocol core (`ritas` crate) is sans-io and only consumes the
//! [`Transport`] trait, so the same protocol logic also runs over the
//! deterministic simulator in `ritas-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod hub;
pub mod session;
pub mod tcp;
pub mod wire;

use bytes::Bytes;
use std::time::Duration;

/// Identifier of a process in the group `P = {p_0 … p_{n-1}}`.
pub type ProcessId = usize;

/// Errors surfaced by transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The destination process id is outside `0..n`.
    UnknownPeer(ProcessId),
    /// The endpoint (or its hub) has been shut down.
    Disconnected,
    /// No message arrived within the requested timeout.
    Timeout,
    /// An inbound frame failed authentication and was dropped.
    AuthFailure {
        /// Claimed origin of the rejected frame.
        from: ProcessId,
    },
    /// The link to one peer is down (or its bounded outbound queue is
    /// full) and the message could not be accepted for delivery. Other
    /// links are unaffected; the session layer keeps trying to heal the
    /// link in the background.
    LinkDown {
        /// The unreachable peer.
        peer: ProcessId,
    },
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::AuthFailure { from } => {
                write!(f, "authentication failure on frame claiming origin {from}")
            }
            TransportError::LinkDown { peer } => {
                write!(f, "link to peer {peer} is down")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Why a link is terminally down (no further reconnection attempts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDownReason {
    /// The local endpoint was closed.
    Closed,
    /// The peer's session state is gone (e.g. it restarted and presented
    /// a sequence gap): retransmission can no longer guarantee the
    /// reliable-channel contract, so the link is not resumed.
    PeerStateLost,
}

/// The state of one point-to-point link, as seen by the session layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// The link has a live connection; frames flow immediately.
    Up,
    /// The connection was lost; outbound frames are buffered and the
    /// session layer is re-establishing the link in the background.
    Reconnecting,
    /// The link is terminally down for the given reason.
    Down(LinkDownReason),
}

/// A link-state transition, observable via [`Transport::poll_link_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEvent {
    /// The peer on the other end of the link.
    pub peer: ProcessId,
    /// The state the link transitioned into.
    pub state: LinkState,
    /// The session epoch at the time of the transition (increments on
    /// every successful resume handshake).
    pub epoch: u64,
}

/// A point-to-point reliable-channel endpoint for one process.
///
/// Implementations must provide per-link FIFO ordering and reliable
/// delivery between correct processes — the contract the paper obtains
/// from TCP (§2.1).
pub trait Transport: Send {
    /// This process's identifier.
    fn local_id(&self) -> ProcessId;

    /// Number of processes in the group.
    fn group_size(&self) -> usize;

    /// Sends `payload` to `to` (loopback sends to self are allowed and
    /// delivered like any other message).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnknownPeer`] for an out-of-range id and
    /// [`TransportError::Disconnected`] if the endpoint was shut down.
    fn send(&self, to: ProcessId, payload: Bytes) -> Result<(), TransportError>;

    /// Blocks until a message arrives; returns `(sender, payload)`.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] once no message can ever
    /// arrive again.
    fn recv(&self) -> Result<(ProcessId, Bytes), TransportError>;

    /// Like [`Transport::recv`] but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] if nothing arrived in time, otherwise as
    /// [`Transport::recv`].
    fn recv_timeout(&self, timeout: Duration) -> Result<(ProcessId, Bytes), TransportError>;

    /// Broadcast convenience: sends `payload` to every process including
    /// self. The stack's broadcasts are built from point-to-point sends,
    /// exactly as in the paper (there is no network-level multicast).
    ///
    /// The fan-out is **best-effort per link**: a failure on one link
    /// (e.g. a crashed peer whose endpoint is gone) must not prevent
    /// delivery to the remaining peers — in the asynchronous Byzantine
    /// model a dead peer is indistinguishable from a slow one, and
    /// aborting a broadcast midway would silently violate the reliable-
    /// channel assumption for the *live* peers.
    ///
    /// # Errors
    ///
    /// Returns the first error only after attempting every peer, so
    /// callers can observe (and typically ignore) link failures.
    fn send_all(&self, payload: Bytes) -> Result<(), TransportError> {
        let mut first_err = None;
        for p in 0..self.group_size() {
            if let Err(e) = self.send(p, payload.clone()) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The current state of the link to `peer`.
    ///
    /// Transports without a failure-prone connection underneath (the
    /// in-memory hub, the simulator) are always [`LinkState::Up`], which
    /// is the default.
    fn link_state(&self, peer: ProcessId) -> LinkState {
        let _ = peer;
        LinkState::Up
    }

    /// Drains the next pending link-state transition, if any.
    ///
    /// Transports whose links cannot fail never produce events (the
    /// default). Self-healing transports report `Up` / `Reconnecting` /
    /// `Down` transitions here so the runtime can surface outages to the
    /// application instead of eating them.
    fn poll_link_event(&self) -> Option<LinkEvent> {
        None
    }

    /// Switches the transport to the pairwise key table of `epoch`
    /// (proactive key rejuvenation — see `ritas_crypto::KeyTable::
    /// dealer_for_epoch`). Subsequent outbound frames are sealed under
    /// the new epoch's keys; inbound frames from the previous epoch stay
    /// acceptable during a bounded grace window.
    ///
    /// Transports without keyed authentication underneath (the in-memory
    /// hub, the simulator) ignore this — the default is a no-op.
    fn set_key_epoch(&self, epoch: u64) {
        let _ = epoch;
    }

    /// The key epoch outbound frames are currently sealed under.
    /// Unkeyed transports are permanently at epoch 0 (the default).
    fn key_epoch(&self) -> u64 {
        0
    }
}

pub use auth::{AuthConfig, AuthenticatedTransport, AH_OVERHEAD};
pub use hub::{Hub, MemoryEndpoint};
pub use tcp::{TcpChaosHandle, TcpConfig, TcpEndpoint};
