//! IPSec-AH-style channel authentication (integrity property of §2.1).
//!
//! The paper's testbed established IPSec *security associations* between
//! every pair of hosts, using the Authentication Header protocol with
//! HMAC-SHA-1 in transport mode (§4). This module reproduces the relevant
//! behaviour of AH (RFC 2402 / RFC 2404) on top of any [`Transport`]:
//!
//! * a 24-byte header per frame — next-header, payload-length, reserved,
//!   SPI, sequence number, and a 96-bit integrity check value (ICV) —
//!   matching the +24-byte overhead the paper measures in Table 1;
//! * ICV = HMAC-SHA-1-96 over the header (ICV zeroed) and payload, keyed
//!   by the pairwise link key;
//! * anti-replay via a 64-entry sliding window per source, as RFC 2402
//!   prescribes.
//!
//! Frames that fail authentication are *dropped*, exactly like AH: the
//! receiving protocol stack never sees them, which is how the integrity
//! property is enforced against a network-level adversary.
//!
//! # Epoch key refresh (proactive recovery)
//!
//! When built with [`AuthConfig::with_epoch_rekey`], the transport
//! additionally supports the rotation scheduler's **key rejuvenation**:
//! the otherwise-zero *reserved* field of the AH header carries the key
//! epoch (its low 16 bits; the header stays 24 bytes, so Table 1's
//! overhead claim is untouched — the receiver reconstructs the full
//! epoch windowed around its own, ESN-style, so the tag keeps working
//! after the counter passes 2^16), and the pairwise key row is re-derived as
//! `HKDF(master, epoch)` on every [`Transport::set_key_epoch`]. Inbound
//! frames are accepted under the current epoch, under the immediately
//! previous epoch for a bounded *grace window* after the switch (in-
//! flight traffic must not be lost on rotation), and under a *newer*
//! epoch than ours — which, when the ICV verifies against the derived
//! keys, fast-forwards the local epoch (this is how a freshly wiped
//! replica, restarting at epoch 0, self-synchronizes to the cluster's
//! current epoch from authenticated traffic alone). Anything older is
//! dropped and counted in `transport_epoch_rejected`: keys an intruder
//! exfiltrated before its host was wiped die with the grace window.

use crate::wire::{Reader, Writer};
use crate::{ProcessId, Transport, TransportError};
use bytes::Bytes;
use parking_lot::Mutex;
use ritas_crypto::{Hmac, KeyTable, SecretKey, Sha1};
use ritas_metrics::Metrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Bytes added to every frame by the AH-style header (matches the paper's
/// measured IPSec AH overhead: "The IPSec AH header adds another 24 bytes").
pub const AH_OVERHEAD: usize = 24;

/// Length of the truncated HMAC-SHA-1-96 integrity check value.
const ICV_LEN: usize = 12;

/// AH anti-replay window size (RFC 2402 recommends at least 32; we use 64).
const REPLAY_WINDOW: u64 = 64;

/// Epoch-rekey parameters (see [`AuthConfig::with_epoch_rekey`]).
#[derive(Debug, Clone, Copy)]
struct RekeyConfig {
    /// Master seed the per-epoch key tables are derived from.
    master_seed: u64,
    /// Epoch the transport starts sealing under.
    epoch: u64,
    /// How long previous-epoch frames stay acceptable after a switch.
    grace: Duration,
}

/// Configuration for an [`AuthenticatedTransport`].
#[derive(Debug, Clone)]
pub struct AuthConfig {
    /// Pairwise keys for this process (dealt out-of-band, §2).
    keys: Vec<SecretKey>,
    /// Whether replayed sequence numbers are rejected.
    anti_replay: bool,
    /// First outbound sequence number minus one (0 = fresh association).
    initial_seq: u64,
    /// Epoch key refresh, when enabled.
    rekey: Option<RekeyConfig>,
}

impl AuthConfig {
    /// Builds the config for process `me` from a dealt [`KeyTable`].
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for the table.
    pub fn from_key_table(table: &KeyTable, me: ProcessId) -> Self {
        let view = table.view_of(me);
        AuthConfig {
            keys: (0..view.len()).map(|j| view.key_for(j)).collect(),
            anti_replay: true,
            initial_seq: 0,
            rekey: None,
        }
    }

    /// Disables anti-replay (used by tests that re-inject frames).
    pub fn without_anti_replay(mut self) -> Self {
        self.anti_replay = false;
        self
    }

    /// Starts the outbound sequence counters above `seq` — the rekey/new-SA
    /// escape hatch for a process that lost its counters in a wipe: peers'
    /// replay windows still sit at the old incarnation's high-water mark,
    /// so a rejoiner must resume *above* every number it could previously
    /// have used or all of its frames are dropped as replays.
    pub fn with_initial_seq(mut self, seq: u64) -> Self {
        self.initial_seq = seq;
        self
    }

    /// Enables **epoch key refresh**: the transport starts sealing under
    /// the key table `HKDF(master_seed, epoch)` (epoch 0 is the legacy
    /// dealer table, so existing associations interoperate), tags every
    /// frame with its epoch in the AH reserved field, and honours
    /// [`Transport::set_key_epoch`] switches. After a switch, frames
    /// sealed under the immediately previous epoch stay acceptable for
    /// `grace`; anything older is dropped.
    ///
    /// The on-wire tag is the epoch's low 16 bits, which keeps the
    /// header at exactly [`AH_OVERHEAD`] bytes; receivers reconstruct
    /// the full epoch as the congruent value closest to their own
    /// (extended-sequence-number style), so peers interoperate across
    /// the 16-bit wrap as long as they are within 2^15 rotations of
    /// each other — honest peers are within a handful.
    pub fn with_epoch_rekey(mut self, master_seed: u64, epoch: u64, grace: Duration) -> Self {
        self.rekey = Some(RekeyConfig {
            master_seed,
            epoch,
            grace,
        });
        self
    }
}

/// Per-source anti-replay state: highest sequence seen plus a bitmask of
/// the window below it.
#[derive(Debug, Default, Clone)]
struct ReplayState {
    highest: u64,
    window: u64,
}

impl ReplayState {
    /// Returns `true` (and records the number) if `seq` is new; `false` if
    /// it is a replay or fell off the window.
    fn accept(&mut self, seq: u64) -> bool {
        if seq > self.highest {
            let shift = seq - self.highest;
            self.window = if shift >= REPLAY_WINDOW {
                0
            } else {
                self.window << shift
            };
            self.window |= 1; // bit 0 = highest
            self.highest = seq;
            true
        } else {
            let offset = self.highest - seq;
            if offset >= REPLAY_WINDOW {
                return false; // too old
            }
            let bit = 1u64 << offset;
            if self.window & bit != 0 {
                return false; // replayed
            }
            self.window |= bit;
            true
        }
    }
}

/// A [`Transport`] decorator that seals every outbound frame with an
/// AH-style header and silently drops inbound frames that fail the ICV or
/// replay checks.
///
/// # Example
///
/// ```
/// use ritas_transport::{AuthConfig, AuthenticatedTransport, Hub, Transport};
/// use ritas_crypto::KeyTable;
/// use bytes::Bytes;
///
/// let table = KeyTable::dealer(2, 7);
/// let mut hub = Hub::new(2);
/// let mut eps = hub.take_endpoints().into_iter();
/// let a = AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 0));
/// let b = AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1));
/// a.send(1, Bytes::from_static(b"sealed")).unwrap();
/// assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"sealed")));
/// ```
#[derive(Debug)]
pub struct AuthenticatedTransport<T: Transport> {
    inner: T,
    config: AuthConfig,
    /// Outbound sequence counter per destination.
    tx_seq: Vec<AtomicU64>,
    /// Inbound replay window per source.
    rx_replay: Mutex<Vec<ReplayState>>,
    /// Count of inbound frames dropped by authentication.
    rejected: AtomicU64,
    /// Live epoch-rekey state, when enabled via
    /// [`AuthConfig::with_epoch_rekey`].
    rekey: Option<RekeyRuntime>,
    /// Observability registry (a private one until [`set_metrics`] is called).
    ///
    /// [`set_metrics`]: AuthenticatedTransport::set_metrics
    metrics: Metrics,
}

/// The previous epoch's key row, kept alive for the grace window.
#[derive(Debug)]
struct PrevEpoch {
    epoch: u64,
    keys: Vec<SecretKey>,
    rotated_at: Instant,
}

/// The epoch the transport currently seals under, plus the grace-window
/// remnant of the one before it.
#[derive(Debug)]
struct EpochState {
    epoch: u64,
    keys: Vec<SecretKey>,
    prev: Option<PrevEpoch>,
    /// One-entry cache of the most recently derived *future*-epoch
    /// candidate row, so inbound frames claiming an epoch ahead of ours
    /// cost one full n×n derivation per distinct claim instead of one
    /// per frame (the derivation runs before the ICV verifies, so it
    /// would otherwise be attacker-forceable work).
    future: Option<(u64, Vec<SecretKey>)>,
}

#[derive(Debug)]
struct RekeyRuntime {
    master_seed: u64,
    grace: Duration,
    state: Mutex<EpochState>,
    /// How many future-epoch candidate rows have been derived (cache
    /// misses on the path above) — observability for the DoS bound.
    future_derives: AtomicU64,
}

/// Why an inbound frame was dropped (drives which counter it lands in).
enum Rejection {
    /// ICV/SPI/replay failure — forged, corrupted or replayed traffic.
    BadMac,
    /// Sealed under a key epoch retired past its grace window.
    StaleEpoch,
}

/// This process's key row for `(master_seed, epoch)`.
fn derive_row(n: usize, master_seed: u64, epoch: u64, me: ProcessId) -> Vec<SecretKey> {
    let view = KeyTable::dealer_for_epoch(n, master_seed, epoch).view_of(me);
    (0..n).map(|j| view.key_for(j)).collect()
}

/// Recovers the full u64 epoch from its on-wire low 16 bits: the value
/// congruent to `tag` (mod 2^16) that is *closest* to `local` (the
/// receiver's own epoch), in the style of IPSec AH extended sequence
/// numbers (RFC 4302 appendix B). A raw `tag as u64` comparison would
/// wrap below the receiver's epoch once the cluster passes epoch 65535
/// (~23 days at the default rotation period) and drop every frame as
/// stale — a permanent cluster-wide outage. Honest peers are always
/// within a handful of rotations of each other, so the ±2^15 window is
/// never a constraint; when the nearest congruent value would be
/// negative (a receiver near epoch 0 seeing a high tag), the smallest
/// congruent value is used instead, which keeps the freshly-wiped
/// rejoiner's fast-forward bootstrap working.
fn reconstruct_epoch(local: u64, tag: u16) -> u64 {
    const SPAN: u64 = 1 << 16;
    // Forward distance from `local` to its next tag-congruent value.
    let fwd = u64::from(tag).wrapping_sub(local) & (SPAN - 1);
    if fwd < SPAN / 2 {
        local + fwd
    } else {
        // The congruent value just behind us — unless that would be
        // negative, in which case the true epoch can only be ahead.
        (local + fwd).checked_sub(SPAN).unwrap_or(u64::from(tag))
    }
}

impl<T: Transport> AuthenticatedTransport<T> {
    /// Wraps `inner` with authentication.
    ///
    /// # Panics
    ///
    /// Panics if the key count in `config` does not match the group size.
    pub fn new(inner: T, config: AuthConfig) -> Self {
        assert_eq!(
            config.keys.len(),
            inner.group_size(),
            "one key per peer required"
        );
        let n = inner.group_size();
        let base = config.initial_seq;
        let rekey = config.rekey.map(|rc| {
            // The dealt row in `config.keys` is the epoch-0 table; when
            // starting at a later epoch, re-derive the row for it.
            let keys = if rc.epoch == 0 {
                config.keys.clone()
            } else {
                derive_row(n, rc.master_seed, rc.epoch, inner.local_id())
            };
            RekeyRuntime {
                master_seed: rc.master_seed,
                grace: rc.grace,
                state: Mutex::new(EpochState {
                    epoch: rc.epoch,
                    keys,
                    prev: None,
                    future: None,
                }),
                future_derives: AtomicU64::new(0),
            }
        });
        AuthenticatedTransport {
            inner,
            config,
            tx_seq: (0..n).map(|_| AtomicU64::new(base)).collect(),
            rx_replay: Mutex::new(vec![ReplayState::default(); n]),
            rejected: AtomicU64::new(0),
            rekey,
            metrics: Metrics::default(),
        }
    }

    /// Attaches a shared metrics registry; MAC rejections are counted into
    /// `transport_mac_rejected`.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// Number of inbound frames dropped for failing authentication.
    pub fn rejected_frames(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Gives back the wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// SPI for the security association `src → dst` (deterministic, both
    /// ends derive the same pair of unidirectional SAs).
    fn spi(src: ProcessId, dst: ProcessId) -> u32 {
        ((src as u32) << 16) | (dst as u32 & 0xffff)
    }

    fn seal(&self, to: ProcessId, payload: &[u8]) -> Bytes {
        let seq = self.tx_seq[to].fetch_add(1, Ordering::Relaxed) + 1; // AH starts at 1
        let me = self.inner.local_id();
        let (epoch, key) = match &self.rekey {
            Some(rt) => {
                let g = rt.state.lock();
                (g.epoch, g.keys[to])
            }
            None => (0, self.config.keys[to]),
        };
        let mut w = Writer::with_capacity(AH_OVERHEAD + payload.len());
        w.u8(0) // next header (opaque payload)
            .u8(((AH_OVERHEAD / 4) - 2) as u8) // AH "payload len" in 32-bit words minus 2
            .u16(epoch as u16) // reserved field carries the key epoch
            .u32(Self::spi(me, to))
            .u32(seq as u32)
            .raw(&[0u8; ICV_LEN]) // ICV placeholder
            .raw(payload);
        let mut frame = w.freeze().to_vec();
        let icv = Self::icv(&key, &frame);
        frame[12..12 + ICV_LEN].copy_from_slice(&icv);
        Bytes::from(frame)
    }

    /// Computes HMAC-SHA-1-96 over the frame with the ICV field zeroed
    /// (the frame passed in must already have zeros there).
    fn icv(key: &SecretKey, frame_with_zero_icv: &[u8]) -> [u8; ICV_LEN] {
        let full = Hmac::<Sha1>::mac(key.as_ref(), frame_with_zero_icv);
        let mut out = [0u8; ICV_LEN];
        out.copy_from_slice(&full[..ICV_LEN]);
        out
    }

    /// Validates a sealed frame from `from`; returns the payload on success.
    fn open(&self, from: ProcessId, frame: &Bytes) -> Result<Bytes, Rejection> {
        let mut r = Reader::new(frame);
        let parse = (|| {
            let _next = r.u8("ah.next").ok()?;
            let _plen = r.u8("ah.len").ok()?;
            let resv = r.u16("ah.reserved").ok()?;
            let spi = r.u32("ah.spi").ok()?;
            let seq = r.u32("ah.seq").ok()? as u64;
            let icv: [u8; ICV_LEN] = r.array("ah.icv").ok()?;
            Some((resv, spi, seq, icv))
        })();
        let Some((resv, spi, seq, icv)) = parse else {
            return Err(Rejection::BadMac);
        };

        if spi != Self::spi(from, self.inner.local_id()) {
            return Err(Rejection::BadMac);
        }

        // Recompute the ICV over the frame with the ICV field zeroed.
        let mut zeroed = frame.to_vec();
        zeroed[12..12 + ICV_LEN].fill(0);
        let checks = |key: &SecretKey| ritas_crypto::digest::ct_eq(&Self::icv(key, &zeroed), &icv);

        match &self.rekey {
            // Legacy mode: single static key table, reserved field ignored
            // (always 0 on the sealing side).
            None => {
                if !checks(&self.config.keys[from]) {
                    return Err(Rejection::BadMac);
                }
            }
            Some(rt) => {
                enum Candidate {
                    Key(SecretKey),
                    Future(u64),
                    Stale,
                }
                let cand = {
                    let g = rt.state.lock();
                    // The wire carries only the epoch's low 16 bits:
                    // recover the full epoch windowed around our own, so
                    // the tag keeps working after the counter wraps.
                    let claimed = reconstruct_epoch(g.epoch, resv);
                    if claimed == g.epoch {
                        Candidate::Key(g.keys[from])
                    } else if claimed > g.epoch {
                        Candidate::Future(claimed)
                    } else {
                        match &g.prev {
                            Some(p) if p.epoch == claimed && p.rotated_at.elapsed() <= rt.grace => {
                                Candidate::Key(p.keys[from])
                            }
                            _ => Candidate::Stale,
                        }
                    }
                };
                match cand {
                    Candidate::Key(key) => {
                        if !checks(&key) {
                            return Err(Rejection::BadMac);
                        }
                    }
                    Candidate::Stale => return Err(Rejection::StaleEpoch),
                    Candidate::Future(claimed) => {
                        // A peer is ahead of us (we may be a freshly wiped
                        // rejoiner still at epoch 0). Verify against the
                        // derived keys for the claimed epoch; a valid ICV
                        // is proof of the master secret, so adopt it.
                        //
                        // Deriving a row is an n×n HKDF sweep and this
                        // path runs *before* the ICV verifies, so a
                        // one-entry candidate cache keeps an off-path
                        // attacker from forcing that work per forged
                        // frame: repeat claims of the same epoch (also
                        // the legitimate pattern — every frame from a
                        // rotated-ahead peer) cost one cheap ICV check.
                        let cached = {
                            let g = rt.state.lock();
                            match &g.future {
                                Some((e, row)) if *e == claimed => Some(row.clone()),
                                _ => None,
                            }
                        };
                        let row = match cached {
                            Some(row) => row,
                            None => {
                                let row = derive_row(
                                    self.inner.group_size(),
                                    rt.master_seed,
                                    claimed,
                                    self.inner.local_id(),
                                );
                                rt.future_derives.fetch_add(1, Ordering::Relaxed);
                                rt.state.lock().future = Some((claimed, row.clone()));
                                row
                            }
                        };
                        if !checks(&row[from]) {
                            return Err(Rejection::BadMac);
                        }
                        let mut g = rt.state.lock();
                        if claimed > g.epoch {
                            let old = std::mem::replace(&mut g.keys, row);
                            g.prev = Some(PrevEpoch {
                                epoch: g.epoch,
                                keys: old,
                                rotated_at: Instant::now(),
                            });
                            g.epoch = claimed;
                            g.future = None; // no longer a future epoch
                            self.metrics.transport_epoch_adopted.inc();
                        }
                    }
                }
            }
        }

        if self.config.anti_replay {
            let mut windows = self.rx_replay.lock();
            if !windows[from].accept(seq) {
                return Err(Rejection::BadMac);
            }
        }

        Ok(frame.slice(AH_OVERHEAD..))
    }

    /// Counts one dropped frame into the kind-appropriate instruments.
    fn note_rejection(&self, from: ProcessId, why: &Rejection) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        match why {
            Rejection::BadMac => {
                self.metrics.transport_mac_rejected.inc();
                self.metrics
                    .suspect(from as u32, ritas_metrics::SuspicionKind::BadMac);
            }
            // A stale epoch is *not* Byzantine evidence by itself — an
            // honest-but-slow peer's in-flight frames look the same as an
            // intruder replaying exfiltrated old keys — so it gets its own
            // counter instead of poisoning the suspicion table.
            Rejection::StaleEpoch => self.metrics.transport_epoch_rejected.inc(),
        }
    }
}

impl<T: Transport> Transport for AuthenticatedTransport<T> {
    fn local_id(&self) -> ProcessId {
        self.inner.local_id()
    }

    fn group_size(&self) -> usize {
        self.inner.group_size()
    }

    fn send(&self, to: ProcessId, payload: Bytes) -> Result<(), TransportError> {
        if to >= self.inner.group_size() {
            return Err(TransportError::UnknownPeer(to));
        }
        self.inner.send(to, self.seal(to, &payload))
    }

    fn recv(&self) -> Result<(ProcessId, Bytes), TransportError> {
        loop {
            let (from, frame) = self.inner.recv()?;
            match self.open(from, &frame) {
                Ok(payload) => return Ok((from, payload)),
                Err(why) => self.note_rejection(from, &why),
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(ProcessId, Bytes), TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout);
            }
            let (from, frame) = self.inner.recv_timeout(remaining)?;
            match self.open(from, &frame) {
                Ok(payload) => return Ok((from, payload)),
                Err(why) => self.note_rejection(from, &why),
            }
        }
    }

    fn link_state(&self, peer: ProcessId) -> crate::LinkState {
        self.inner.link_state(peer)
    }

    fn poll_link_event(&self) -> Option<crate::LinkEvent> {
        self.inner.poll_link_event()
    }

    fn set_key_epoch(&self, epoch: u64) {
        let Some(rt) = &self.rekey else { return };
        let mut g = rt.state.lock();
        if epoch <= g.epoch {
            return; // epochs only move forward
        }
        let row = derive_row(
            self.inner.group_size(),
            rt.master_seed,
            epoch,
            self.inner.local_id(),
        );
        let old = std::mem::replace(&mut g.keys, row);
        g.prev = Some(PrevEpoch {
            epoch: g.epoch,
            keys: old,
            rotated_at: Instant::now(),
        });
        g.epoch = epoch;
        // A cached future-candidate row at or below the new epoch can
        // never be consulted again.
        if g.future.as_ref().is_some_and(|(e, _)| *e <= epoch) {
            g.future = None;
        }
    }

    fn key_epoch(&self) -> u64 {
        self.rekey.as_ref().map_or(0, |rt| rt.state.lock().epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::Hub;

    fn pair() -> (
        AuthenticatedTransport<crate::MemoryEndpoint>,
        AuthenticatedTransport<crate::MemoryEndpoint>,
    ) {
        let table = KeyTable::dealer(2, 99);
        let mut hub = Hub::new(2);
        let mut eps = hub.take_endpoints().into_iter();
        (
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 0)),
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1)),
        )
    }

    #[test]
    fn seal_open_roundtrip() {
        let (a, b) = pair();
        a.send(1, Bytes::from_static(b"payload")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"payload")));
        assert_eq!(b.rejected_frames(), 0);
    }

    #[test]
    fn overhead_is_exactly_24_bytes() {
        let table = KeyTable::dealer(2, 1);
        let mut hub = Hub::new(2);
        let mut eps = hub.take_endpoints().into_iter();
        let raw_receiver = eps.next().unwrap(); // endpoint 0, unwrapped
        let a =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1));
        a.send(0, Bytes::from_static(b"ten bytes!")).unwrap();
        let (_, frame) = raw_receiver.recv().unwrap();
        assert_eq!(frame.len(), 10 + AH_OVERHEAD);
    }

    #[test]
    fn tampered_payload_dropped() {
        let table = KeyTable::dealer(2, 2);
        let mut hub = Hub::new(2);
        let mut eps = hub.take_endpoints().into_iter();
        let ep0 = eps.next().unwrap();
        let b =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1));
        // Process 0 (acting as a man-in-the-middle) forges a frame without
        // knowing the key.
        let mut forged = vec![0u8; AH_OVERHEAD];
        forged[4..8].copy_from_slice(&1u32.to_be_bytes()); // SPI for 0 -> 1
        forged.extend_from_slice(b"evil");
        ep0.send(1, Bytes::from(forged)).unwrap();
        // Then a genuine frame via a proper wrapper so recv returns.
        let a = AuthenticatedTransport::new(ep0, AuthConfig::from_key_table(&table, 0));
        a.send(1, Bytes::from_static(b"good")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"good")));
        assert_eq!(b.rejected_frames(), 1);
    }

    #[test]
    fn bitflip_in_payload_detected() {
        let table = KeyTable::dealer(2, 3);
        let mut hub = Hub::new(2);
        let mut eps = hub.take_endpoints().into_iter();
        let ep0 = eps.next().unwrap();
        let b =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1));
        let a = AuthenticatedTransport::new(ep0, AuthConfig::from_key_table(&table, 0));
        // Seal a frame, flip one payload bit, re-inject through the inner
        // transport — the open() path must reject it.
        let sealed = a.seal(1, b"x");
        let mut bad = sealed.to_vec();
        *bad.last_mut().unwrap() ^= 0x01;
        a.inner.send(1, Bytes::from(bad)).unwrap();
        a.send(1, Bytes::from_static(b"ok")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"ok")));
        assert_eq!(b.rejected_frames(), 1);
    }

    #[test]
    fn replayed_frame_dropped() {
        let table = KeyTable::dealer(2, 4);
        let mut hub = Hub::new(2);
        let mut eps = hub.take_endpoints().into_iter();
        let ep0 = eps.next().unwrap();
        let b =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1));
        let a = AuthenticatedTransport::new(ep0, AuthConfig::from_key_table(&table, 0));
        let sealed = a.seal(1, b"once");
        a.inner.send(1, sealed.clone()).unwrap();
        a.inner.send(1, sealed).unwrap(); // replay
        a.send(1, Bytes::from_static(b"end")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"once")));
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"end")));
        assert_eq!(b.rejected_frames(), 1);
    }

    #[test]
    fn replay_allowed_when_disabled() {
        let table = KeyTable::dealer(2, 5);
        let mut hub = Hub::new(2);
        let mut eps = hub.take_endpoints().into_iter();
        let ep0 = eps.next().unwrap();
        let b = AuthenticatedTransport::new(
            eps.next().unwrap(),
            AuthConfig::from_key_table(&table, 1).without_anti_replay(),
        );
        let a = AuthenticatedTransport::new(ep0, AuthConfig::from_key_table(&table, 0));
        let sealed = a.seal(1, b"dup");
        a.inner.send(1, sealed.clone()).unwrap();
        a.inner.send(1, sealed).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"dup")));
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"dup")));
    }

    #[test]
    fn wrong_claimed_origin_rejected() {
        // A frame sealed by 0 for 1 but arriving labeled as from another
        // peer fails the SPI check. Build a 3-party hub; peer 2 replays a
        // frame that 0 sealed.
        let table = KeyTable::dealer(3, 6);
        let mut hub = Hub::new(3);
        let mut eps = hub.take_endpoints().into_iter();
        let a =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 0));
        let b =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 1));
        let ep2 = eps.next().unwrap();
        let sealed_by_0 = a.seal(1, b"stolen");
        ep2.send(1, sealed_by_0).unwrap(); // claims from=2, SPI says 0→1
        a.send(1, Bytes::from_static(b"real")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"real")));
        assert_eq!(b.rejected_frames(), 1);
    }

    #[test]
    fn replay_window_accepts_out_of_order_but_not_duplicates() {
        let mut st = ReplayState::default();
        assert!(st.accept(3));
        assert!(st.accept(1)); // late but new
        assert!(!st.accept(1)); // duplicate
        assert!(st.accept(2));
        assert!(st.accept(100));
        assert!(!st.accept(3)); // too old / already seen
        assert!(!st.accept(100 - REPLAY_WINDOW)); // fell off the window
        assert!(st.accept(99));
    }

    #[test]
    fn recv_timeout_propagates() {
        let (_a, b) = pair();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            TransportError::Timeout
        );
    }

    fn rekey_pair(
        grace: Duration,
    ) -> (
        AuthenticatedTransport<crate::MemoryEndpoint>,
        AuthenticatedTransport<crate::MemoryEndpoint>,
    ) {
        let table = KeyTable::dealer(2, 7);
        let mut hub = Hub::new(2);
        let mut eps = hub.take_endpoints().into_iter();
        (
            AuthenticatedTransport::new(
                eps.next().unwrap(),
                AuthConfig::from_key_table(&table, 0).with_epoch_rekey(7, 0, grace),
            ),
            AuthenticatedTransport::new(
                eps.next().unwrap(),
                AuthConfig::from_key_table(&table, 1).with_epoch_rekey(7, 0, grace),
            ),
        )
    }

    #[test]
    fn epoch_zero_rekey_interoperates_with_legacy_and_keeps_overhead() {
        let table = KeyTable::dealer(2, 7);
        let mut hub = Hub::new(2);
        let mut eps = hub.take_endpoints().into_iter();
        // Legacy (no rekey) endpoint 0 talks to a rekey-enabled endpoint 1
        // still at epoch 0 — identical wire format, both directions.
        let legacy =
            AuthenticatedTransport::new(eps.next().unwrap(), AuthConfig::from_key_table(&table, 0));
        let rekeyed = AuthenticatedTransport::new(
            eps.next().unwrap(),
            AuthConfig::from_key_table(&table, 1).with_epoch_rekey(7, 0, Duration::from_secs(1)),
        );
        legacy.send(1, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(rekeyed.recv().unwrap(), (0, Bytes::from_static(b"hello")));
        rekeyed.send(0, Bytes::from_static(b"back")).unwrap();
        assert_eq!(legacy.recv().unwrap(), (1, Bytes::from_static(b"back")));
        // The epoch tag rides in the existing reserved field: still 24 bytes.
        assert_eq!(rekeyed.seal(0, b"x").len(), 1 + AH_OVERHEAD);
    }

    #[test]
    fn rotated_peers_exchange_frames_under_the_new_epoch() {
        let (a, b) = rekey_pair(Duration::from_secs(60));
        a.set_key_epoch(3);
        b.set_key_epoch(3);
        assert_eq!(a.key_epoch(), 3);
        // The frame is tagged with epoch 3 in the reserved field.
        let sealed = a.seal(1, b"tagged");
        assert_eq!(u16::from_be_bytes([sealed[2], sealed[3]]), 3);
        a.inner.send(1, sealed).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"tagged")));
        assert_eq!(b.rejected_frames(), 0);
    }

    #[test]
    fn previous_epoch_accepted_within_grace_then_rejected_after() {
        // Generous grace: an in-flight epoch-0 frame survives b's switch.
        let (a, b) = rekey_pair(Duration::from_secs(60));
        let in_flight = a.seal(1, b"old but fresh");
        b.set_key_epoch(1);
        a.inner.send(1, in_flight).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"old but fresh")));

        // Zero grace: the same situation drops the frame and counts it as
        // an epoch rejection, not a MAC failure / suspicion.
        let (a, b) = rekey_pair(Duration::ZERO);
        let stale = a.seal(1, b"exfiltrated");
        b.set_key_epoch(1);
        b.set_key_epoch(2); // epoch 0 is now older than prev: always stale
        a.inner.send(1, stale).unwrap();
        let m = Metrics::new();
        let mut b = b;
        b.set_metrics(m.clone());
        a.set_key_epoch(2);
        a.send(1, Bytes::from_static(b"current")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"current")));
        assert_eq!(b.rejected_frames(), 1);
        assert_eq!(m.transport_epoch_rejected.get(), 1);
        assert_eq!(m.transport_mac_rejected.get(), 0);
        assert!(
            m.suspicions().is_empty(),
            "stale epoch is not an accusation"
        );
    }

    #[test]
    fn receiver_fast_forwards_to_a_verified_higher_epoch() {
        // b (say, a freshly wiped rejoiner) is still at epoch 0; a has
        // rotated to 5. b verifies a's frame under the derived epoch-5
        // keys and adopts the epoch — self-synchronization from
        // authenticated traffic alone.
        let (a, b) = rekey_pair(Duration::from_secs(60));
        let m = Metrics::new();
        let mut b = b;
        b.set_metrics(m.clone());
        a.set_key_epoch(5);
        a.send(1, Bytes::from_static(b"from the future")).unwrap();
        assert_eq!(
            b.recv().unwrap(),
            (0, Bytes::from_static(b"from the future"))
        );
        assert_eq!(b.key_epoch(), 5);
        assert_eq!(m.transport_epoch_adopted.get(), 1);
        // And b now seals under epoch 5, readable by a.
        b.send(0, Bytes::from_static(b"caught up")).unwrap();
        assert_eq!(a.recv().unwrap(), (1, Bytes::from_static(b"caught up")));
    }

    #[test]
    fn epoch_reconstruction_windows_around_local() {
        // Steady state past the 16-bit wrap: same / ahead / behind.
        assert_eq!(reconstruct_epoch(65540, 4), 65540);
        assert_eq!(reconstruct_epoch(65540, 5), 65541);
        assert_eq!(reconstruct_epoch(65540, 3), 65539);
        // Exactly at the wrap boundary, both directions.
        assert_eq!(reconstruct_epoch(65535, 0), 65536);
        assert_eq!(reconstruct_epoch(65536, 65535), 65535);
        // Many wraps in.
        let e = 1_000_017u64;
        assert_eq!(reconstruct_epoch(1_000_000, (e % 65536) as u16), e);
        // A receiver near zero resolves otherwise-negative candidates to
        // the smallest congruent value (there are no negative epochs) —
        // the freshly-wiped rejoiner bootstrap.
        assert_eq!(reconstruct_epoch(0, 7), 7);
        assert_eq!(reconstruct_epoch(0, 65535), 65535);
        assert_eq!(reconstruct_epoch(5, 65535), 65535);
    }

    #[test]
    fn epoch_tag_survives_the_16_bit_wrap() {
        // Past epoch 65535 the wire tag wraps; the windowed
        // reconstruction must keep same-epoch, grace-window and
        // fast-forward traffic flowing (a raw `tag as u64` comparison
        // would drop everything as stale once the cluster epoch passed
        // 2^16 — a permanent authentication outage).
        let (a, b) = rekey_pair(Duration::from_secs(60));
        a.set_key_epoch(70_000);
        b.set_key_epoch(70_000);
        a.send(1, Bytes::from_static(b"wrapped")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"wrapped")));
        // Grace window across the wrap: b rotates one ahead, a's
        // epoch-70000 frames still verify under prev.
        b.set_key_epoch(70_001);
        a.send(1, Bytes::from_static(b"in flight")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"in flight")));
        // Fast-forward across the wrap: a jumps ahead of b, which
        // adopts the verified higher epoch.
        a.set_key_epoch(70_002);
        a.send(1, Bytes::from_static(b"ahead")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"ahead")));
        assert_eq!(b.key_epoch(), 70_002);
        assert_eq!(b.rejected_frames(), 0);
    }

    #[test]
    fn repeated_future_epoch_claims_derive_at_most_once() {
        // Garbage frames claiming a future epoch must not cost a full
        // n×n key-table derivation each: the candidate row is derived
        // once, cached, and every repeat claim dies on the cheap ICV
        // check.
        let (a, b) = rekey_pair(Duration::from_secs(60));
        for _ in 0..32 {
            let mut forged = a.seal(1, b"junk").to_vec();
            forged[2..4].copy_from_slice(&9u16.to_be_bytes()); // claim epoch 9
            a.inner.send(1, Bytes::from(forged)).unwrap();
        }
        a.send(1, Bytes::from_static(b"real")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"real")));
        assert_eq!(b.rejected_frames(), 32);
        let rt = b.rekey.as_ref().unwrap();
        assert_eq!(rt.future_derives.load(Ordering::Relaxed), 1);
        assert_eq!(b.key_epoch(), 0);
        // The poisoned cache does not block a genuine adoption of a
        // *different* future epoch.
        a.set_key_epoch(5);
        a.send(1, Bytes::from_static(b"rotate")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"rotate")));
        assert_eq!(b.key_epoch(), 5);
    }

    #[test]
    fn forged_future_epoch_does_not_move_the_receiver() {
        // An attacker without the master seed cannot fast-forward a peer:
        // the ICV check under the derived keys fails and the epoch stays.
        let (a, b) = rekey_pair(Duration::from_secs(60));
        let mut forged = a.seal(1, b"evil").to_vec();
        forged[2..4].copy_from_slice(&9u16.to_be_bytes()); // claim epoch 9
        a.inner.send(1, Bytes::from(forged)).unwrap();
        a.send(1, Bytes::from_static(b"real")).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Bytes::from_static(b"real")));
        assert_eq!(b.rejected_frames(), 1);
        assert_eq!(b.key_epoch(), 0);
    }

    use ritas_crypto::KeyTable;
}
