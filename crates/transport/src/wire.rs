//! Byte-level codec helpers shared by every layer of the stack.
//!
//! The paper's implementation passes *mbufs* (message buffers) between
//! layers (§3.2); this module is our equivalent of the header read/write
//! routines those mbufs carry. All integers are big-endian ("network
//! order"), variable-length fields are length-prefixed with a `u32`.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Maximum accepted length for a length-prefixed field (16 MiB). A decoder
/// limit, not a protocol limit: it bounds allocation when decoding hostile
/// input from Byzantine peers.
pub const MAX_FIELD_LEN: usize = 16 * 1024 * 1024;

/// Headroom a transport frame may add on top of the largest field: layer
/// headers, authentication headers, session seq/ack words and smaller
/// sibling fields all fit comfortably within it.
pub const FRAME_HEADROOM: usize = 1024 * 1024;

/// Maximum accepted transport frame length, **derived** from the codec's
/// field cap so the two can never drift apart: any frame a correct peer
/// can produce decodes into fields of at most [`MAX_FIELD_LEN`] plus
/// bounded header overhead.
pub const MAX_FRAME: usize = MAX_FIELD_LEN + FRAME_HEADROOM;

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the expected field.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// A length prefix exceeded [`MAX_FIELD_LEN`].
    FieldTooLong {
        /// What was being decoded.
        what: &'static str,
        /// The offending length.
        len: usize,
    },
    /// A tag/discriminant byte had no defined meaning.
    InvalidTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// Trailing bytes remained after a complete decode.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated input while decoding {what}"),
            WireError::FieldTooLong { what, len } => {
                write!(f, "field {what} too long ({len} bytes)")
            }
            WireError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag:#04x} while decoding {what}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A decoding cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails with [`WireError::TrailingBytes`] unless the input was fully
    /// consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.buf.len(),
            })
        }
    }

    fn take(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() < len {
            return Err(WireError::Truncated { what });
        }
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    /// Reads exactly `N` raw bytes into an array.
    pub fn array<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], WireError> {
        let b = self.take(N, what)?;
        let mut a = [0u8; N];
        a.copy_from_slice(b);
        Ok(a)
    }

    /// Reads a `u32`-length-prefixed byte field.
    pub fn bytes(&mut self, what: &'static str) -> Result<Bytes, WireError> {
        let len = self.u32(what)? as usize;
        if len > MAX_FIELD_LEN {
            return Err(WireError::FieldTooLong { what, len });
        }
        Ok(Bytes::copy_from_slice(self.take(len, what)?))
    }

    /// Reads exactly `len` raw (non-prefixed) bytes.
    pub fn raw(&mut self, len: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(len, what)
    }
}

/// An encoding buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Appends a big-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16(v);
        self
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32(v);
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64(v);
        self
    }

    /// Appends a `u32`-length-prefixed byte field.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `u32::MAX` bytes (unreachable for our frames).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf
            .put_u32(u32::try_from(v.len()).expect("field length fits in u32"));
        self.buf.put_slice(v);
        self
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes encoding and returns the immutable buffer.
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Encodes `value` as a `u32` checked at encode time.
///
/// # Errors
///
/// Never fails for values below `u32::MAX`; provided for symmetry with
/// hostile decoding where range checks matter.
pub fn checked_u32(value: usize, what: &'static str) -> Result<u32, WireError> {
    u32::try_from(value).map_err(|_| WireError::FieldTooLong { what, len: value })
}

/// Consumes `buf` ensuring it still has at least `len` bytes (decode guard
/// used by the AH layer before splitting header/payload).
pub fn require_len(buf: &Bytes, len: usize, what: &'static str) -> Result<(), WireError> {
    if buf.remaining() < len {
        Err(WireError::Truncated { what })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.u8(7).u16(1000).u32(70_000).u64(u64::MAX);
        let buf = w.freeze();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 1000);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), u64::MAX);
        r.finish().unwrap();
    }

    #[test]
    fn roundtrip_bytes() {
        let mut w = Writer::new();
        w.bytes(b"hello").bytes(b"");
        let buf = w.freeze();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes("x").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(r.bytes("y").unwrap(), Bytes::new());
        r.finish().unwrap();
    }

    #[test]
    fn truncated_scalar() {
        let mut r = Reader::new(&[0x01]);
        assert_eq!(
            r.u32("field").unwrap_err(),
            WireError::Truncated { what: "field" }
        );
    }

    #[test]
    fn truncated_bytes_body() {
        let mut w = Writer::new();
        w.u32(10).raw(b"abc"); // claims 10, provides 3
        let buf = w.freeze();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes("f"), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut w = Writer::new();
        w.u32((MAX_FIELD_LEN + 1) as u32);
        let buf = w.freeze();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.bytes("f"), Err(WireError::FieldTooLong { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1).u8(2);
        let buf = w.freeze();
        let mut r = Reader::new(&buf);
        r.u8("a").unwrap();
        assert_eq!(
            r.finish().unwrap_err(),
            WireError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn array_roundtrip() {
        let mut w = Writer::new();
        w.raw(&[1, 2, 3, 4]);
        let buf = w.freeze();
        let mut r = Reader::new(&buf);
        assert_eq!(r.array::<4>("arr").unwrap(), [1, 2, 3, 4]);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            WireError::Truncated { what: "x" },
            WireError::FieldTooLong { what: "x", len: 1 },
            WireError::InvalidTag { what: "x", tag: 9 },
            WireError::TrailingBytes { remaining: 3 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
