//! In-memory full-mesh of reliable FIFO links.
//!
//! Substitutes the paper's TCP mesh: every pair of processes is connected
//! by a channel that delivers every sent message exactly once, in order —
//! the reliability property of §2.1. The hub additionally supports the
//! fault injections used by the evaluation and the tests:
//!
//! * **crash** ([`Hub::crash`]) — the fail-stop faultload of §4.2: the
//!   process stops sending and its inbound queue is closed;
//! * **partition** ([`Hub::set_link`]) — link cuts for liveness tests
//!   (never applied between correct processes in conformance tests, since
//!   the model assumes reliable channels).

use crate::{ProcessId, Transport, TransportError};
use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared hub state: link matrix, crash flags and the inbound sender of
/// every process (shared so a reattached endpoint's fresh channel is
/// visible to all peers).
#[derive(Debug)]
struct HubState {
    /// `links[i][j]` is `true` when the `i → j` link is up.
    links: Vec<Vec<bool>>,
    /// `crashed[i]` marks a fail-stopped process.
    crashed: Vec<bool>,
    /// `txs[j]` feeds process `j`'s inbound queue.
    txs: Vec<Sender<(ProcessId, Bytes)>>,
}

/// An in-memory network connecting `n` processes with reliable FIFO links.
///
/// # Example
///
/// ```
/// use ritas_transport::{Hub, Transport};
/// use bytes::Bytes;
///
/// let mut hub = Hub::new(3);
/// let endpoints = hub.take_endpoints();
/// endpoints[0].send(1, Bytes::from_static(b"ping")).unwrap();
/// let (from, payload) = endpoints[1].recv().unwrap();
/// assert_eq!((from, payload.as_ref()), (0, &b"ping"[..]));
/// ```
#[derive(Debug)]
pub struct Hub {
    n: usize,
    state: Arc<RwLock<HubState>>,
    endpoints: Vec<MemoryEndpoint>,
}

impl Hub {
    /// Creates a hub for `n` processes with all links up.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "hub needs at least one process");
        let mut txs: Vec<Sender<(ProcessId, Bytes)>> = Vec::with_capacity(n);
        let mut rxs: Vec<Receiver<(ProcessId, Bytes)>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let state = Arc::new(RwLock::new(HubState {
            links: vec![vec![true; n]; n],
            crashed: vec![false; n],
            txs,
        }));

        let endpoints = rxs
            .into_iter()
            .enumerate()
            .map(|(me, rx)| MemoryEndpoint {
                me,
                n,
                state: Arc::clone(&state),
                rx,
                closed: Arc::new(AtomicBool::new(false)),
            })
            .collect();

        Hub {
            n,
            state,
            endpoints,
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the hub connects zero processes (never true).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Removes and returns all endpoints (one per process), to be moved
    /// into per-process threads.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn take_endpoints(&mut self) -> Vec<MemoryEndpoint> {
        assert!(
            !self.endpoints.is_empty(),
            "endpoints already taken from this hub"
        );
        std::mem::take(&mut self.endpoints)
    }

    /// Fail-stops process `p`: all its links go down and its inbound
    /// endpoint stops yielding messages.
    pub fn crash(&self, p: ProcessId) {
        let mut s = self.state.write();
        if p < self.n {
            s.crashed[p] = true;
            for j in 0..self.n {
                s.links[p][j] = false;
                s.links[j][p] = false;
            }
        }
    }

    /// Raises or cuts the directed link `from → to`.
    pub fn set_link(&self, from: ProcessId, to: ProcessId, up: bool) {
        let mut s = self.state.write();
        if from < self.n && to < self.n {
            s.links[from][to] = up;
        }
    }

    /// Whether process `p` has been crashed.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.state.read().crashed.get(p).copied().unwrap_or(false)
    }

    /// Re-admits process `p` with a **fresh** inbound queue: clears its
    /// crash flag, restores all of its links, and installs a new channel
    /// that all peers route to from now on — the network face of a
    /// wipe-and-rejoin. Frames queued on (or sent to) the old endpoint
    /// are lost, exactly like a process that lost its disk and memory.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn reattach(&self, p: ProcessId) -> MemoryEndpoint {
        assert!(p < self.n, "reattach of unknown process {p}");
        let (tx, rx) = unbounded();
        let mut s = self.state.write();
        s.crashed[p] = false;
        for j in 0..self.n {
            s.links[p][j] = true;
            s.links[j][p] = true;
        }
        s.txs[p] = tx;
        MemoryEndpoint {
            me: p,
            n: self.n,
            state: Arc::clone(&self.state),
            rx,
            closed: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// One process's endpoint on a [`Hub`].
#[derive(Debug)]
pub struct MemoryEndpoint {
    me: ProcessId,
    n: usize,
    state: Arc<RwLock<HubState>>,
    rx: Receiver<(ProcessId, Bytes)>,
    closed: Arc<AtomicBool>,
}

impl MemoryEndpoint {
    /// Closes this endpoint locally; subsequent operations fail with
    /// [`TransportError::Disconnected`].
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    fn check_open(&self) -> Result<(), TransportError> {
        if self.closed.load(Ordering::SeqCst) {
            Err(TransportError::Disconnected)
        } else {
            Ok(())
        }
    }

    /// Drains any immediately-available message without blocking.
    pub fn try_recv(&self) -> Option<(ProcessId, Bytes)> {
        if self.closed.load(Ordering::SeqCst) {
            return None;
        }
        match self.rx.try_recv() {
            Ok(v) => Some(v),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }
}

impl Transport for MemoryEndpoint {
    fn local_id(&self) -> ProcessId {
        self.me
    }

    fn group_size(&self) -> usize {
        self.n
    }

    fn send(&self, to: ProcessId, payload: Bytes) -> Result<(), TransportError> {
        self.check_open()?;
        if to >= self.n {
            return Err(TransportError::UnknownPeer(to));
        }
        let s = self.state.read();
        // A crashed or partitioned link silently drops: from the
        // receiver's perspective this is indistinguishable from an
        // arbitrarily slow asynchronous link, which is the model.
        if s.crashed[self.me] || !s.links[self.me][to] {
            return Ok(());
        }
        // A peer whose endpoint has been dropped (its process exited) is
        // indistinguishable from a crashed one: the frame vanishes
        // silently, exactly like the crash/partition cases above.
        let _ = s.txs[to].send((self.me, payload));
        Ok(())
    }

    fn recv(&self) -> Result<(ProcessId, Bytes), TransportError> {
        self.check_open()?;
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(ProcessId, Bytes), TransportError> {
        self.check_open()?;
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn delivers_point_to_point() {
        let mut hub = Hub::new(2);
        let eps = hub.take_endpoints();
        eps[0].send(1, bytes("hi")).unwrap();
        assert_eq!(eps[1].recv().unwrap(), (0, bytes("hi")));
    }

    #[test]
    fn per_link_fifo_order() {
        let mut hub = Hub::new(2);
        let eps = hub.take_endpoints();
        for i in 0..100u32 {
            eps[0]
                .send(1, Bytes::copy_from_slice(&i.to_be_bytes()))
                .unwrap();
        }
        for i in 0..100u32 {
            let (_, p) = eps[1].recv().unwrap();
            assert_eq!(p.as_ref(), i.to_be_bytes());
        }
    }

    #[test]
    fn loopback_send_to_self() {
        let mut hub = Hub::new(1);
        let eps = hub.take_endpoints();
        eps[0].send(0, bytes("self")).unwrap();
        assert_eq!(eps[0].recv().unwrap(), (0, bytes("self")));
    }

    #[test]
    fn send_all_reaches_everyone() {
        let mut hub = Hub::new(4);
        let eps = hub.take_endpoints();
        eps[2].send_all(bytes("b")).unwrap();
        for ep in &eps {
            assert_eq!(ep.recv().unwrap(), (2, bytes("b")));
        }
    }

    #[test]
    fn unknown_peer_rejected() {
        let mut hub = Hub::new(2);
        let eps = hub.take_endpoints();
        assert_eq!(
            eps[0].send(5, bytes("x")).unwrap_err(),
            TransportError::UnknownPeer(5)
        );
    }

    #[test]
    fn crash_silences_process() {
        let mut hub = Hub::new(3);
        let eps = hub.take_endpoints();
        hub.crash(0);
        assert!(hub.is_crashed(0));
        eps[0].send(1, bytes("from crashed")).unwrap(); // silently dropped
        eps[2].send(1, bytes("alive")).unwrap();
        assert_eq!(eps[1].recv().unwrap(), (2, bytes("alive")));
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn crash_cuts_inbound_links_too() {
        let mut hub = Hub::new(3);
        let eps = hub.take_endpoints();
        hub.crash(1);
        eps[0].send(1, bytes("into the void")).unwrap();
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn partition_drops_directed_link_only() {
        let mut hub = Hub::new(2);
        let eps = hub.take_endpoints();
        hub.set_link(0, 1, false);
        eps[0].send(1, bytes("dropped")).unwrap();
        eps[1].send(0, bytes("still up")).unwrap();
        assert_eq!(eps[0].recv().unwrap(), (1, bytes("still up")));
        assert!(eps[1].try_recv().is_none());
        hub.set_link(0, 1, true);
        eps[0].send(1, bytes("back")).unwrap();
        assert_eq!(eps[1].recv().unwrap(), (0, bytes("back")));
    }

    #[test]
    fn recv_timeout_times_out() {
        let mut hub = Hub::new(1);
        let eps = hub.take_endpoints();
        assert_eq!(
            eps[0].recv_timeout(Duration::from_millis(10)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn closed_endpoint_disconnects() {
        let mut hub = Hub::new(2);
        let eps = hub.take_endpoints();
        eps[0].close();
        assert_eq!(eps[0].recv().unwrap_err(), TransportError::Disconnected);
        assert_eq!(
            eps[0].send(1, bytes("x")).unwrap_err(),
            TransportError::Disconnected
        );
    }

    #[test]
    fn reattach_revives_a_crashed_process_with_a_fresh_queue() {
        let mut hub = Hub::new(3);
        let eps = hub.take_endpoints();
        // Frames queued before the wipe must not survive it.
        eps[1].send(0, bytes("pre-crash")).unwrap();
        hub.crash(0);
        eps[1].send(0, bytes("while down")).unwrap(); // dropped
        let revived = hub.reattach(0);
        assert!(!hub.is_crashed(0));
        assert!(revived.try_recv().is_none(), "old queue must be wiped");
        // Fresh traffic flows in both directions through the new channel.
        eps[1].send(0, bytes("welcome back")).unwrap();
        assert_eq!(revived.recv().unwrap(), (1, bytes("welcome back")));
        revived.send(2, bytes("rejoined")).unwrap();
        assert_eq!(eps[2].recv().unwrap(), (0, bytes("rejoined")));
    }

    #[test]
    fn concurrent_senders_all_delivered() {
        let mut hub = Hub::new(4);
        let mut eps = hub.take_endpoints();
        let receiver = eps.remove(3);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        ep.send(3, Bytes::copy_from_slice(&i.to_be_bytes()))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut per_sender = [0u32; 3];
        for _ in 0..150 {
            let (from, p) = receiver.recv().unwrap();
            let v = u32::from_be_bytes(p.as_ref().try_into().unwrap());
            // FIFO per sender: values from one sender arrive in order.
            assert_eq!(v, per_sender[from]);
            per_sender[from] += 1;
        }
    }
}
