//! Session-layer primitives that make the TCP reliable channel *actually*
//! reliable (paper §2.1).
//!
//! The paper assumes channels where "if both ends are correct, the message
//! is eventually delivered" and realizes them with TCP+IPSec — but a bare
//! TCP connection voids that assumption the moment a socket dies. This
//! module holds the sans-io pieces [`crate::TcpEndpoint`] composes into a
//! self-healing link:
//!
//! * **frame header** — every frame carries a per-link monotone sequence
//!   number and a cumulative acknowledgement (`[len][seq][ack][payload]`);
//!   `seq == 0` marks ACK-only control frames;
//! * **[`RetransmitBuffer`]** — a bounded store of unacknowledged frames.
//!   It never evicts an unacked frame: when full, senders experience
//!   backpressure instead of silent loss;
//! * **[`Hello`]** — the MAC-authenticated session-resume handshake.
//!   Epochs are strictly increasing per link, so a replayed handshake is
//!   rejected; the exchanged `rx_cum` values tell each side exactly which
//!   frames to retransmit, making reconnects lossless and (thanks to
//!   receive-side dedup) duplicate-free;
//! * **[`Backoff`]** — exponential reconnect backoff with deterministic
//!   jitter.

use crate::wire::{Reader, Writer};
use crate::ProcessId;
use bytes::Bytes;
use ritas_crypto::{Hmac, SecretKey, Sha1};
use std::collections::VecDeque;
use std::time::Duration;

/// Bytes of session header per frame after the `u32` length prefix:
/// `u64` sequence number + `u64` cumulative ack.
pub const SESSION_HDR: usize = 16;

/// Magic tag opening a dialer's hello.
pub const MAGIC_HELLO: u32 = 0x5253_4E31; // "RSN1"

/// Magic tag opening an acceptor's hello-ack.
pub const MAGIC_HELLO_ACK: u32 = 0x5253_4E32; // "RSN2"

/// Truncated HMAC-SHA-1-96 tag length, as in the AH layer above.
pub const HELLO_MAC_LEN: usize = 12;

/// Fixed encoded size of a [`Hello`] (either direction).
pub const HELLO_LEN: usize = 4 + 4 + 4 + 8 + 8 + HELLO_MAC_LEN;

/// Encodes one session frame: `[u32 len][u64 seq][u64 ack][payload]`.
/// A `seq` of zero is an ACK-only control frame and carries no payload
/// for the stack.
pub fn encode_frame(seq: u64, ack: u64, payload: &[u8]) -> Bytes {
    let mut w = Writer::with_capacity(4 + SESSION_HDR + payload.len());
    w.u32((SESSION_HDR + payload.len()) as u32)
        .u64(seq)
        .u64(ack)
        .raw(payload);
    w.freeze()
}

/// The session-resume handshake message.
///
/// The dialer opens every (re)connection with a hello carrying a strictly
/// increasing `epoch` and its cumulative receive sequence; the acceptor
/// answers with a hello-ack echoing the epoch and carrying its own
/// `rx_cum`. Both messages are authenticated with HMAC-SHA-1-96 under the
/// pairwise link key, with the direction tag, both process ids, the epoch
/// and the cumulative sequence all inside the MAC — so a handshake can
/// neither be forged, redirected, nor replayed (a replay carries a stale
/// epoch and is rejected by the monotonicity check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Sender of the handshake message.
    pub from: ProcessId,
    /// Intended receiver.
    pub to: ProcessId,
    /// Session epoch (dialer-chosen, strictly increasing per link; the
    /// hello-ack echoes the dialer's epoch).
    pub epoch: u64,
    /// Highest contiguous data sequence the sender has received on this
    /// link — the peer retransmits everything above it.
    pub rx_cum: u64,
}

impl Hello {
    fn mac(&self, key: &SecretKey, ack: bool) -> [u8; HELLO_MAC_LEN] {
        let mut w = Writer::with_capacity(32);
        w.u8(if ack { 2 } else { 1 })
            .u32(self.from as u32)
            .u32(self.to as u32)
            .u64(self.epoch)
            .u64(self.rx_cum);
        let full = Hmac::<Sha1>::mac(key.as_ref(), &w.freeze());
        let mut out = [0u8; HELLO_MAC_LEN];
        out.copy_from_slice(&full[..HELLO_MAC_LEN]);
        out
    }

    /// Encodes and authenticates the handshake (`ack` selects the
    /// hello-ack direction).
    pub fn encode(&self, key: &SecretKey, ack: bool) -> [u8; HELLO_LEN] {
        let mut w = Writer::with_capacity(HELLO_LEN);
        w.u32(if ack { MAGIC_HELLO_ACK } else { MAGIC_HELLO })
            .u32(self.from as u32)
            .u32(self.to as u32)
            .u64(self.epoch)
            .u64(self.rx_cum)
            .raw(&self.mac(key, ack));
        let bytes = w.freeze();
        let mut out = [0u8; HELLO_LEN];
        out.copy_from_slice(&bytes);
        out
    }

    /// Parses a handshake without verifying it (the acceptor must learn
    /// `from` before it can pick the right key). Returns the hello and
    /// its claimed MAC; callers **must** check [`Hello::verify`].
    pub fn parse(buf: &[u8; HELLO_LEN], ack: bool) -> Option<(Hello, [u8; HELLO_MAC_LEN])> {
        let mut r = Reader::new(buf);
        let magic = r.u32("hello.magic").ok()?;
        if magic != if ack { MAGIC_HELLO_ACK } else { MAGIC_HELLO } {
            return None;
        }
        let from = r.u32("hello.from").ok()? as ProcessId;
        let to = r.u32("hello.to").ok()? as ProcessId;
        let epoch = r.u64("hello.epoch").ok()?;
        let rx_cum = r.u64("hello.rx_cum").ok()?;
        let mac: [u8; HELLO_MAC_LEN] = r.array("hello.mac").ok()?;
        Some((
            Hello {
                from,
                to,
                epoch,
                rx_cum,
            },
            mac,
        ))
    }

    /// Constant-time MAC verification against the pairwise key.
    pub fn verify(&self, mac: &[u8; HELLO_MAC_LEN], key: &SecretKey, ack: bool) -> bool {
        ritas_crypto::digest::ct_eq(&self.mac(key, ack), mac)
    }
}

/// Bounded store of sent-but-unacknowledged frames on one link.
///
/// Unacked frames are **never** evicted — dropping one would reintroduce
/// exactly the silent message loss the session layer exists to prevent.
/// When the buffer is full the sender must wait (backpressure) or surface
/// [`crate::TransportError::LinkDown`].
#[derive(Debug)]
pub struct RetransmitBuffer {
    frames: VecDeque<(u64, Bytes)>,
    bytes: usize,
    max_frames: usize,
    max_bytes: usize,
}

impl RetransmitBuffer {
    /// Creates a buffer bounded by `max_frames` and `max_bytes`
    /// (whichever is hit first; one frame is always admitted).
    pub fn new(max_frames: usize, max_bytes: usize) -> Self {
        RetransmitBuffer {
            frames: VecDeque::new(),
            bytes: 0,
            max_frames: max_frames.max(1),
            max_bytes,
        }
    }

    /// Whether another frame may be admitted.
    pub fn has_space(&self) -> bool {
        self.frames.is_empty()
            || (self.frames.len() < self.max_frames && self.bytes < self.max_bytes)
    }

    /// Number of buffered (unacked) frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing is awaiting acknowledgement.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Admits the frame with sequence `seq` (sequences must be pushed in
    /// increasing order).
    pub fn push(&mut self, seq: u64, payload: Bytes) {
        debug_assert!(self.frames.back().is_none_or(|(s, _)| *s < seq));
        self.bytes += payload.len();
        self.frames.push_back((seq, payload));
    }

    /// Drops every frame with sequence ≤ `cum` (cumulative ack). Returns
    /// how many frames were released.
    pub fn ack(&mut self, cum: u64) -> usize {
        let mut dropped = 0;
        while let Some((seq, payload)) = self.frames.front() {
            if *seq > cum {
                break;
            }
            self.bytes -= payload.len();
            self.frames.pop_front();
            dropped += 1;
        }
        dropped
    }

    /// Iterates the buffered frames in sequence order (for retransmission
    /// after a resume handshake).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Bytes)> {
        self.frames.iter().map(|(s, p)| (*s, p))
    }
}

/// Exponential backoff with deterministic jitter for reconnect attempts.
#[derive(Debug)]
pub struct Backoff {
    min: Duration,
    max: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// Creates a backoff schedule in `[min, max]`, seeded for jitter.
    pub fn new(min: Duration, max: Duration, seed: u64) -> Self {
        Backoff {
            min,
            max,
            attempt: 0,
            rng: seed | 1,
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The delay before the next attempt: `min · 2^attempt` capped at
    /// `max`, jittered into `[base/2, base]` so a mesh of dialers does
    /// not thunder in lockstep.
    pub fn next_delay(&mut self) -> Duration {
        let base = self
            .min
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.max);
        self.attempt = self.attempt.saturating_add(1);
        let base_ns = base.as_nanos() as u64;
        let jittered = base_ns / 2 + self.next_rand() % (base_ns / 2 + 1);
        Duration::from_nanos(jittered)
    }

    /// Resets the schedule after a successful attempt.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ritas_crypto::KeyTable;

    fn key() -> SecretKey {
        KeyTable::dealer(2, 7).view_of(0).key_for(1)
    }

    #[test]
    fn frame_roundtrip() {
        let f = encode_frame(5, 3, b"payload");
        assert_eq!(&f[..4], &((SESSION_HDR + 7) as u32).to_be_bytes());
        let mut r = Reader::new(&f[4..]);
        assert_eq!(r.u64("seq").unwrap(), 5);
        assert_eq!(r.u64("ack").unwrap(), 3);
        assert_eq!(r.raw(7, "payload").unwrap(), b"payload");
    }

    #[test]
    fn hello_roundtrip_and_verify() {
        let h = Hello {
            from: 0,
            to: 1,
            epoch: 3,
            rx_cum: 42,
        };
        let buf = h.encode(&key(), false);
        let (parsed, mac) = Hello::parse(&buf, false).unwrap();
        assert_eq!(parsed, h);
        assert!(parsed.verify(&mac, &key(), false));
    }

    #[test]
    fn hello_direction_and_tamper_rejected() {
        let h = Hello {
            from: 0,
            to: 1,
            epoch: 1,
            rx_cum: 0,
        };
        let buf = h.encode(&key(), false);
        // A dialer hello does not parse as an ack (magic differs)…
        assert!(Hello::parse(&buf, true).is_none());
        // …and its MAC does not verify under the ack domain either.
        let (parsed, mac) = Hello::parse(&buf, false).unwrap();
        assert!(!parsed.verify(&mac, &key(), true));
        // A flipped epoch bit fails verification.
        let mut bad = buf;
        bad[12] ^= 0x01;
        let (parsed, mac) = Hello::parse(&bad, false).unwrap();
        assert!(!parsed.verify(&mac, &key(), false));
    }

    #[test]
    fn retransmit_buffer_acks_cumulatively_and_backpressures() {
        let mut b = RetransmitBuffer::new(3, usize::MAX);
        for seq in 1..=3 {
            assert!(b.has_space());
            b.push(seq, Bytes::from(vec![0u8; 10]));
        }
        assert!(!b.has_space(), "frame cap must backpressure");
        assert_eq!(b.ack(2), 2);
        assert!(b.has_space());
        assert_eq!(b.iter().map(|(s, _)| s).collect::<Vec<_>>(), vec![3]);
        assert_eq!(b.ack(100), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn retransmit_buffer_byte_cap() {
        let mut b = RetransmitBuffer::new(usize::MAX, 100);
        b.push(1, Bytes::from(vec![0u8; 200]));
        // The first frame always fits; the byte cap blocks the second.
        assert!(!b.has_space());
        b.ack(1);
        assert!(b.has_space());
    }

    #[test]
    fn backoff_grows_to_cap_with_jitter() {
        let min = Duration::from_millis(10);
        let max = Duration::from_millis(500);
        let mut b = Backoff::new(min, max, 99);
        let mut last = Duration::ZERO;
        for _ in 0..10 {
            let d = b.next_delay();
            assert!(d >= min / 2, "below jitter floor: {d:?}");
            assert!(d <= max, "above cap: {d:?}");
            last = d;
        }
        assert!(last >= max / 2, "did not reach the cap region: {last:?}");
        b.reset();
        assert!(b.next_delay() <= min, "reset did not restart the schedule");
    }
}
