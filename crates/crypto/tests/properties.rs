//! Property-based tests for the crypto substrate: the hash functions'
//! streaming behaviour, HMAC/MAC verification laws, key-table symmetry
//! and coin determinism — for arbitrary inputs, not just the fixed RFC
//! vectors pinned by the unit tests.

use proptest::prelude::*;
use ritas_crypto::digest::ct_eq;
use ritas_crypto::{mac, Coin, DeterministicCoin, Digest, Hmac, KeyTable, Sha1, Sha256};

proptest! {
    /// Feeding data in arbitrary chunkings must produce the one-shot
    /// digest (the classic incremental-hashing law).
    #[test]
    fn sha256_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        splits in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let mut h = Sha256::new();
        let mut rest: &[u8] = &data;
        for s in splits {
            if rest.is_empty() { break; }
            let cut = (s as usize) % rest.len().max(1);
            let (head, tail) = rest.split_at(cut.min(rest.len()));
            h.update(head);
            rest = tail;
        }
        h.update(rest);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha1_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cut in any::<u16>(),
    ) {
        let cut = (cut as usize) % (data.len() + 1);
        let mut h = Sha1::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    /// Different inputs produce different digests (collision smoke — a
    /// real collision here would be publishable).
    #[test]
    fn sha256_distinguishes_inputs(
        a in proptest::collection::vec(any::<u8>(), 0..128),
        b in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
    }

    /// HMAC verification accepts exactly the genuine tag.
    #[test]
    fn hmac_verify_laws(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        msg in proptest::collection::vec(any::<u8>(), 0..200),
        flip in any::<u8>(),
    ) {
        let tag = Hmac::<Sha256>::mac(&key, &msg);
        prop_assert!(Hmac::<Sha256>::verify(&key, &msg, tag.as_ref()));
        // Truncated tags (AH-style) verify too.
        prop_assert!(Hmac::<Sha256>::verify(&key, &msg, &tag.as_ref()[..12]));
        // A flipped bit anywhere in the tag must fail.
        let mut bad = tag;
        let i = (flip as usize) % bad.len();
        bad[i] ^= 1 << (flip % 8);
        prop_assert!(!Hmac::<Sha256>::verify(&key, &msg, &bad));
    }

    /// The paper's MAC: verification accepts only the matching
    /// (message, key) pair.
    #[test]
    fn paper_mac_laws(
        msg in proptest::collection::vec(any::<u8>(), 0..200),
        other in proptest::collection::vec(any::<u8>(), 0..200),
        seed in any::<u64>(),
    ) {
        let table = KeyTable::dealer(4, seed);
        let k = table.shared_key(0, 1).unwrap();
        let tag = mac::authenticate(&msg, &k);
        prop_assert!(mac::verify(&msg, &k, &tag));
        if other != msg {
            prop_assert!(!mac::verify(&other, &k, &tag));
        }
        let k2 = table.shared_key(0, 2).unwrap();
        prop_assert!(!mac::verify(&msg, &k2, &tag));
    }

    /// Key tables are symmetric and deterministic for any (n, seed).
    #[test]
    fn key_table_symmetry(n in 1usize..12, seed in any::<u64>()) {
        let t = KeyTable::dealer(n, seed);
        let t2 = KeyTable::dealer(n, seed);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(t.shared_key(i, j), t.shared_key(j, i));
                prop_assert_eq!(t.shared_key(i, j), t2.shared_key(i, j));
            }
        }
    }

    /// ct_eq agrees with ==.
    #[test]
    fn ct_eq_matches_eq(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    /// Deterministic coins replay exactly per seed.
    #[test]
    fn coin_replay(seed in any::<u64>(), len in 1usize..200) {
        let seq = |s| {
            let mut c = DeterministicCoin::new(s);
            (0..len).map(|_| c.flip()).collect::<Vec<_>>()
        };
        prop_assert_eq!(seq(seed), seq(seed));
    }
}
