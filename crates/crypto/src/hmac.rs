//! HMAC (RFC 2104), generic over the [`Digest`] trait.
//!
//! The paper's reliable channel uses IPSec AH, whose integrity check value
//! is HMAC-SHA-1-96 (RFC 2404): the 20-byte HMAC-SHA-1 output truncated to
//! 12 bytes. `ritas-transport` builds exactly that from this module.

use crate::digest::{ct_eq, Digest};

/// An HMAC instance keyed with `K`, computing `H((K' ^ opad) ‖ H((K' ^ ipad) ‖ m))`.
///
/// # Example
///
/// ```
/// use ritas_crypto::{Hmac, Sha256};
///
/// let tag = Hmac::<Sha256>::mac(b"key", b"message");
/// assert!(Hmac::<Sha256>::verify(b"key", b"message", tag.as_ref()));
/// assert!(!Hmac::<Sha256>::verify(b"key", b"tampered", tag.as_ref()));
/// ```
#[derive(Clone, Debug)]
pub struct Hmac<D: Digest> {
    inner: D,
    /// Outer pad-key block, kept to finish the outer hash on finalize.
    okey: Vec<u8>,
}

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC instance for `key`.
    ///
    /// Keys longer than the block size are first hashed, per RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut kblock = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let kh = D::digest(key);
            kblock[..kh.as_ref().len()].copy_from_slice(kh.as_ref());
        } else {
            kblock[..key.len()].copy_from_slice(key);
        }
        let ikey: Vec<u8> = kblock.iter().map(|b| b ^ 0x36).collect();
        let okey: Vec<u8> = kblock.iter().map(|b| b ^ 0x5c).collect();
        let mut inner = D::new();
        inner.update(&ikey);
        Hmac { inner, okey }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the full-length tag.
    pub fn finalize(self) -> D::Output {
        let inner_hash = self.inner.finalize();
        let mut outer = D::new();
        outer.update(&self.okey);
        outer.update(inner_hash.as_ref());
        outer.finalize()
    }

    /// One-shot MAC of `msg` under `key`.
    pub fn mac(key: &[u8], msg: &[u8]) -> D::Output {
        let mut h = Self::new(key);
        h.update(msg);
        h.finalize()
    }

    /// Verifies `tag` (possibly truncated) against the MAC of `msg` under
    /// `key` in constant time.
    ///
    /// A truncated `tag` is compared against the tag's prefix, matching
    /// HMAC-SHA-1-96-style truncation. Empty tags never verify.
    #[must_use]
    pub fn verify(key: &[u8], msg: &[u8], tag: &[u8]) -> bool {
        if tag.is_empty() || tag.len() > D::OUTPUT_LEN {
            return false;
        }
        let full = Self::mac(key, msg);
        ct_eq(&full.as_ref()[..tag.len()], tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sha1, Sha256};

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1 (HMAC-SHA-256).
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = Hmac::<Sha256>::mac(&key, b"Hi There");
        assert_eq!(
            hex(tag.as_ref()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2: key shorter than block, "what do ya want for nothing?".
    #[test]
    fn rfc4231_case2() {
        let tag = Hmac::<Sha256>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(tag.as_ref()),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 6: key longer than block size.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaa; 131];
        let tag = Hmac::<Sha256>::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(tag.as_ref()),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 2202 test case 1 (HMAC-SHA-1).
    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0b; 20];
        let tag = Hmac::<Sha1>::mac(&key, b"Hi There");
        assert_eq!(
            hex(tag.as_ref()),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    // RFC 2202 test case 2.
    #[test]
    fn rfc2202_sha1_case2() {
        let tag = Hmac::<Sha1>::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(tag.as_ref()),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn truncated_verify_hmac_sha1_96() {
        // AH-style: verify on the first 12 bytes of HMAC-SHA-1.
        let key = b"some channel key";
        let full = Hmac::<Sha1>::mac(key, b"payload");
        assert!(Hmac::<Sha1>::verify(key, b"payload", &full.as_ref()[..12]));
        assert!(!Hmac::<Sha1>::verify(key, b"payloae", &full.as_ref()[..12]));
    }

    #[test]
    fn rejects_oversized_or_empty_tags() {
        let tag = Hmac::<Sha1>::mac(b"k", b"m");
        let mut too_long = tag.as_ref().to_vec();
        too_long.push(0);
        assert!(!Hmac::<Sha1>::verify(b"k", b"m", &too_long));
        assert!(!Hmac::<Sha1>::verify(b"k", b"m", &[]));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Hmac::<Sha256>::new(b"key");
        h.update(b"hello ");
        h.update(b"world");
        assert_eq!(h.finalize(), Hmac::<Sha256>::mac(b"key", b"hello world"));
    }
}
