//! Cryptographic primitives for the RITAS protocol stack.
//!
//! RITAS ("Randomized Intrusion-Tolerant Asynchronous Services", DSN 2006)
//! is *signature-free*: no public-key cryptography is used anywhere in the
//! stack. All message integrity derives from two ingredients:
//!
//! * a collision-resistant **hash function** `H` (the paper's testbed used
//!   SHA-1 inside IPSec AH; this crate provides from-scratch [`Sha1`] and
//!   [`Sha256`] implementations pinned by RFC/NIST test vectors), and
//! * **pairwise secret keys** `s_ij` shared between every pair of processes
//!   `(p_i, p_j)` — see [`KeyTable`] — which turn the hash into a simple and
//!   efficient Message Authentication Code `H(m ‖ s_ij)` (paper §2.3).
//!
//! The crate also provides the **hash-vector/matrix** helpers used by the
//! *matrix echo broadcast* (paper §2.3), an [`Hmac`] construction used by the
//! AH-style channel authentication layer, and the unbiased [`coin`] flip
//! abstraction required by Bracha's randomized binary consensus (§2.4).
//!
//! # Example
//!
//! ```
//! use ritas_crypto::{KeyTable, mac};
//!
//! // A trusted dealer distributes pairwise keys among 4 processes.
//! let keys = KeyTable::dealer(4, 42);
//! let k01 = keys.shared_key(0, 1).unwrap();
//!
//! // Process 0 authenticates a message for process 1 …
//! let tag = mac::authenticate(b"hello", &k01);
//! // … and process 1 verifies it with the same shared key.
//! assert!(mac::verify(b"hello", &keys.shared_key(1, 0).unwrap(), &tag));
//! assert!(!mac::verify(b"hullo", &k01, &tag));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coin;
pub mod digest;
pub mod hkdf;
pub mod hmac;
pub mod keys;
pub mod mac;
pub mod sha1;
pub mod sha256;

pub use coin::{
    Coin, DeterministicCoin, FixedCoin, LocalRoundCoin, RoundCoin, SeededCoin, SharedCoin,
    SharedCoinDealer,
};
pub use digest::Digest;
pub use hmac::Hmac;
pub use keys::{ClientKeyDealer, KeyTable, ProcessKeys, SecretKey};
pub use mac::MacTag;
pub use sha1::Sha1;
pub use sha256::Sha256;
