//! The paper's signature-free message authentication: `H(m ‖ s_ij)`.
//!
//! §2.3: "each process p_i builds a vector V_i with V_i\[j\] = H(m, s_ij) for
//! every 0 ≤ j < n. The hash function H is applied to a concatenation of m
//! with the secret key shared with each process … This is a simple and
//! efficient form of Message Authentication Code". This module implements
//! that MAC plus the hash-*vector* and hash-*matrix* helpers the matrix echo
//! broadcast is built from.

use crate::digest::{ct_eq, Digest};
use crate::keys::{ProcessKeys, SecretKey};
use crate::sha256::Sha256;

/// Length of a MAC tag in bytes (SHA-256 output).
pub const TAG_LEN: usize = 32;

/// A MAC tag `H(m ‖ s_ij)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacTag(pub [u8; TAG_LEN]);

impl MacTag {
    /// The raw tag bytes.
    pub fn as_bytes(&self) -> &[u8; TAG_LEN] {
        &self.0
    }

    /// Reconstructs a tag from raw bytes (e.g. after wire decoding).
    pub fn from_bytes(bytes: [u8; TAG_LEN]) -> Self {
        MacTag(bytes)
    }
}

impl AsRef<[u8]> for MacTag {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl core::fmt::Debug for MacTag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "MacTag({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// Computes the paper's MAC: `H(m ‖ s)`.
pub fn authenticate(msg: &[u8], key: &SecretKey) -> MacTag {
    MacTag(Sha256::digest_concat(&[msg, key.as_ref()]))
}

/// Verifies `tag == H(m ‖ s)` in constant time.
#[must_use]
pub fn verify(msg: &[u8], key: &SecretKey, tag: &MacTag) -> bool {
    let expected = authenticate(msg, key);
    ct_eq(expected.as_ref(), tag.as_ref())
}

/// Builds the echo-broadcast hash vector `V_i` for message `m`:
/// `V_i[j] = H(m ‖ s_ij)` for every peer `j` (§2.3).
pub fn hash_vector(msg: &[u8], keys: &ProcessKeys) -> Vec<MacTag> {
    (0..keys.len())
        .map(|j| authenticate(msg, &keys.key_for(j)))
        .collect()
}

/// Counts how many entries of a received matrix *column* verify for this
/// process.
///
/// In the matrix echo broadcast, process `p_j` receives column `j` of the
/// sender's matrix: one entry per row-process `i`, each supposed to equal
/// `H(m ‖ s_ij)`. Entry `i` is checkable by `p_j` because it knows `s_ij`.
/// Missing entries (`None`, from processes whose VECT the sender did not
/// include) do not count. Delivery requires `f + 1` valid entries.
pub fn count_valid_column_entries(
    msg: &[u8],
    keys: &ProcessKeys,
    column: &[Option<MacTag>],
) -> usize {
    column
        .iter()
        .enumerate()
        .filter(|(i, entry)| match (entry, keys.get(*i)) {
            (Some(tag), Some(key)) => verify(msg, &key, tag),
            _ => false,
        })
        .count()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indexing by process id is idiomatic here
mod tests {
    use super::*;
    use crate::keys::KeyTable;

    #[test]
    fn roundtrip() {
        let keys = KeyTable::dealer(4, 1);
        let k = keys.shared_key(0, 1).unwrap();
        let tag = authenticate(b"msg", &k);
        assert!(verify(b"msg", &k, &tag));
    }

    #[test]
    fn rejects_wrong_message() {
        let keys = KeyTable::dealer(4, 1);
        let k = keys.shared_key(0, 1).unwrap();
        let tag = authenticate(b"msg", &k);
        assert!(!verify(b"msG", &k, &tag));
    }

    #[test]
    fn rejects_wrong_key() {
        let keys = KeyTable::dealer(4, 1);
        let k01 = keys.shared_key(0, 1).unwrap();
        let k02 = keys.shared_key(0, 2).unwrap();
        let tag = authenticate(b"msg", &k01);
        assert!(!verify(b"msg", &k02, &tag));
    }

    #[test]
    fn hash_vector_entries_verify_at_the_peer() {
        let table = KeyTable::dealer(4, 9);
        let sender_view = table.view_of(2);
        let v = hash_vector(b"payload", &sender_view);
        assert_eq!(v.len(), 4);
        for j in 0..4 {
            // Peer j verifies entry j with its key shared with process 2.
            let peer_view = table.view_of(j);
            assert!(verify(b"payload", &peer_view.key_for(2), &v[j]));
        }
    }

    #[test]
    fn column_count_matches_valid_entries() {
        // Simulate: processes 0..4, receiver is p_3; rows 0,1 send correct
        // hashes, row 2 sends garbage, row 3 missing.
        let table = KeyTable::dealer(4, 3);
        let msg = b"m";
        let recv = table.view_of(3);
        let col = vec![
            Some(authenticate(msg, &table.view_of(0).key_for(3))),
            Some(authenticate(msg, &table.view_of(1).key_for(3))),
            Some(MacTag([0u8; TAG_LEN])),
            None,
        ];
        assert_eq!(count_valid_column_entries(msg, &recv, &col), 2);
    }

    #[test]
    fn column_count_ignores_out_of_range_rows() {
        let table = KeyTable::dealer(2, 3);
        let recv = table.view_of(0);
        // Column longer than n: extra rows cannot verify.
        let col = vec![
            Some(authenticate(b"m", &table.view_of(0).key_for(0))),
            None,
            Some(MacTag([1u8; TAG_LEN])),
        ];
        assert_eq!(count_valid_column_entries(b"m", &recv, &col), 1);
    }

    #[test]
    fn tag_debug_is_prefix_only() {
        let tag = MacTag([0xab; TAG_LEN]);
        assert_eq!(format!("{tag:?}"), "MacTag(abababab…)");
    }
}
