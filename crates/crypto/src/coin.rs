//! Local coin flips for Bracha-style randomized consensus.
//!
//! §2: "Each process has access to a random bit generator that returns
//! unbiased bits observable only by the process". Ben-Or/Bracha protocols
//! need only this *local* coin (unlike Rabin-style shared coins, which need
//! a trusted dealer). The [`Coin`] trait abstracts the generator so that:
//!
//! * production uses an OS-seeded RNG ([`SeededCoin::from_entropy`]),
//! * simulation/tests use a seeded deterministic RNG ([`DeterministicCoin`]),
//! * adversarial tests force worst-case coins ([`FixedCoin`]).

use crate::digest::Digest;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A source of unbiased random bits, private to one process.
pub trait Coin {
    /// Returns one unbiased random bit.
    fn flip(&mut self) -> bool;
}

/// A coin backed by [`StdRng`] (cryptographically strong, reseedable).
#[derive(Debug)]
pub struct SeededCoin {
    rng: StdRng,
}

impl SeededCoin {
    /// Creates a coin seeded from OS entropy — the production configuration.
    pub fn from_entropy() -> Self {
        SeededCoin {
            rng: StdRng::from_entropy(),
        }
    }

    /// Creates a coin from an explicit seed (reproducible runs).
    pub fn from_seed(seed: u64) -> Self {
        SeededCoin {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Coin for SeededCoin {
    fn flip(&mut self) -> bool {
        self.rng.gen::<bool>()
    }
}

/// A deterministic coin for simulation: identical seeds yield identical
/// flip sequences, which makes every simulated execution replayable.
#[derive(Debug, Clone)]
pub struct DeterministicCoin {
    state: u64,
}

impl DeterministicCoin {
    /// Creates a deterministic coin from a seed.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixpoint of the xorshift below.
        DeterministicCoin {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }
}

impl Coin for DeterministicCoin {
    fn flip(&mut self) -> bool {
        // xorshift64*; plenty for schedule-level randomness in a simulator.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63) != 0
    }
}

/// A coin that always returns the same bit — for adversarial tests that
/// explore worst-case coin sequences (e.g. forcing extra consensus rounds).
#[derive(Debug, Clone, Copy)]
pub struct FixedCoin(pub bool);

impl Coin for FixedCoin {
    fn flip(&mut self) -> bool {
        self.0
    }
}

impl<C: Coin + ?Sized> Coin for Box<C> {
    fn flip(&mut self) -> bool {
        (**self).flip()
    }
}

/// A coin indexed by protocol round — the interface randomized consensus
/// actually needs.
///
/// Ben-Or-style *local* coins ignore the round (see [`LocalRoundCoin`]).
/// Rabin-style *shared* coins ([`SharedCoin`]) return the **same** bit at
/// every correct process for the same round, which collapses the expected
/// round count to O(1) even against an adversarial message scheduler —
/// the trade-off (paper §5) being that a trusted dealer must distribute
/// the coin material beforehand.
pub trait RoundCoin: Send {
    /// Returns the coin for `round` (1-based protocol round).
    fn flip_round(&mut self, round: u32) -> bool;
}

/// Adapts any local [`Coin`] to the [`RoundCoin`] interface by ignoring
/// the round number (Ben-Or's scheme, the paper's default).
#[derive(Debug)]
pub struct LocalRoundCoin<C: Coin>(pub C);

impl<C: Coin + Send> RoundCoin for LocalRoundCoin<C> {
    fn flip_round(&mut self, _round: u32) -> bool {
        self.0.flip()
    }
}

/// A Rabin-style shared coin: the dealer distributes a common secret, and
/// the coin for round `r` of instance `nonce` is a bit of
/// `H(secret ‖ nonce ‖ r)` — identical at every holder.
///
/// This models the *outcome* of Rabin's scheme (dealer-distributed shares
/// of pre-drawn coins) without threshold cryptography: every process can
/// compute every round's coin locally. The adversary learns a round's
/// coin as soon as any process uses it, exactly as in Rabin's protocol
/// once `f + 1` shares are revealed.
#[derive(Debug, Clone)]
pub struct SharedCoin {
    secret: [u8; 32],
    nonce: u64,
}

impl SharedCoin {
    /// The coin for `(nonce, round)` under `secret` — exposed for tests.
    fn bit(secret: &[u8; 32], nonce: u64, round: u32) -> bool {
        let d = crate::sha256::Sha256::digest_concat(&[
            b"ritas-shared-coin".as_slice(),
            secret.as_slice(),
            &nonce.to_be_bytes(),
            &round.to_be_bytes(),
        ]);
        d[0] & 1 == 1
    }
}

impl RoundCoin for SharedCoin {
    fn flip_round(&mut self, round: u32) -> bool {
        Self::bit(&self.secret, self.nonce, round)
    }
}

/// The trusted dealer of Rabin's scheme: deals [`SharedCoin`]s for
/// consensus instances. Every process must be given a dealer built from
/// the same seed (alongside the pairwise keys, §2's key distribution).
#[derive(Debug, Clone)]
pub struct SharedCoinDealer {
    secret: [u8; 32],
}

impl SharedCoinDealer {
    /// Derives the dealer's secret from a master seed.
    pub fn new(master_seed: u64) -> Self {
        SharedCoinDealer {
            secret: crate::sha256::Sha256::digest_concat(&[
                b"ritas-coin-dealer".as_slice(),
                &master_seed.to_be_bytes(),
            ]),
        }
    }

    /// Deals the shared coin for the consensus instance identified by
    /// `instance_nonce` (all processes must use the same nonce for the
    /// same logical instance — e.g. the instance tag).
    pub fn coin(&self, instance_nonce: u64) -> SharedCoin {
        SharedCoin {
            secret: self.secret,
            nonce: instance_nonce,
        }
    }
}

/// A coin driven by any [`RngCore`], handy for plugging proptest-controlled
/// RNGs into the protocol core.
#[derive(Debug)]
pub struct RngCoin<R: RngCore>(pub R);

impl<R: RngCore> Coin for RngCoin<R> {
    fn flip(&mut self) -> bool {
        (self.0.next_u32() & 1) == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_coin_replays() {
        let mut a = DeterministicCoin::new(42);
        let mut b = DeterministicCoin::new(42);
        for _ in 0..100 {
            assert_eq!(a.flip(), b.flip());
        }
    }

    #[test]
    fn deterministic_coin_varies_with_seed() {
        let seq = |seed| {
            let mut c = DeterministicCoin::new(seed);
            (0..64).map(|_| c.flip()).collect::<Vec<_>>()
        };
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn deterministic_coin_is_roughly_unbiased() {
        let mut c = DeterministicCoin::new(7);
        let ones = (0..10_000).filter(|_| c.flip()).count();
        assert!((4_000..6_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn seeded_coin_reproducible() {
        let mut a = SeededCoin::from_seed(5);
        let mut b = SeededCoin::from_seed(5);
        for _ in 0..32 {
            assert_eq!(a.flip(), b.flip());
        }
    }

    #[test]
    fn fixed_coin_is_fixed() {
        let mut heads = FixedCoin(true);
        let mut tails = FixedCoin(false);
        for _ in 0..8 {
            assert!(heads.flip());
            assert!(!tails.flip());
        }
    }

    #[test]
    fn boxed_coin_dispatches() {
        let mut c: Box<dyn Coin> = Box::new(FixedCoin(true));
        assert!(c.flip());
    }

    #[test]
    fn shared_coin_identical_across_holders() {
        let a = SharedCoinDealer::new(7);
        let b = SharedCoinDealer::new(7);
        let mut ca = a.coin(3);
        let mut cb = b.coin(3);
        for round in 1..50 {
            assert_eq!(ca.flip_round(round), cb.flip_round(round));
        }
    }

    #[test]
    fn shared_coin_differs_across_instances_and_seeds() {
        let dealer = SharedCoinDealer::new(7);
        let seq = |mut c: SharedCoin| (1..64).map(|r| c.flip_round(r)).collect::<Vec<_>>();
        assert_ne!(seq(dealer.coin(1)), seq(dealer.coin(2)));
        assert_ne!(
            seq(SharedCoinDealer::new(1).coin(0)),
            seq(SharedCoinDealer::new(2).coin(0))
        );
    }

    #[test]
    fn shared_coin_is_roughly_unbiased() {
        let dealer = SharedCoinDealer::new(11);
        let mut coin = dealer.coin(0);
        let ones = (1..10_000).filter(|r| coin.flip_round(*r)).count();
        assert!((4_000..6_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn shared_coin_stable_per_round() {
        // Re-querying the same round yields the same bit (stateless).
        let mut c = SharedCoinDealer::new(5).coin(9);
        assert_eq!(c.flip_round(4), c.flip_round(4));
    }

    #[test]
    fn local_round_coin_ignores_round() {
        let mut c = LocalRoundCoin(FixedCoin(true));
        assert!(c.flip_round(1));
        assert!(c.flip_round(1000));
    }
}
