//! From-scratch SHA-1 (FIPS 180-4 / RFC 3174).
//!
//! SHA-1 is included because the paper's testbed authenticated the reliable
//! channel with IPSec AH using HMAC-SHA-1 (§4, "the security associations …
//! employed the AH protocol (with SHA-1) in transport mode"). The AH-style
//! layer in `ritas-transport` reproduces that wire format. SHA-1 is long
//! broken for collision resistance; it is used here only to mirror the
//! paper's channel-authentication layer, never as the stack's `H`.

use crate::digest::Digest;

/// Incremental SHA-1 hasher.
///
/// # Example
///
/// ```
/// use ritas_crypto::{Digest, Sha1};
///
/// let digest = Sha1::digest(b"abc");
/// assert_eq!(digest[..4], [0xa9, 0x99, 0x3e, 0x36]);
/// ```
#[derive(Clone, Debug)]
pub struct Sha1 {
    state: [u32; 5],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }
}

impl Sha1 {
    fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = *state;
        for (i, wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(*wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;
    type Output = [u8; 20];

    fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                Self::compress(&mut self.state, &block);
                self.len += 64;
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            Self::compress(&mut self.state, &block);
            self.len += 64;
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize(mut self) -> [u8; 20] {
        let total_bits = (self.len + self.buf_len as u64) * 8;
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&total_bits.to_be_bytes());
        let mut tmp = self.clone();
        tmp.update(&pad[..pad_len + 8]);
        debug_assert_eq!(tmp.buf_len, 0);
        self.state = tmp.state;

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 3174 / FIPS 180-4 vectors.
    #[test]
    fn rfc_abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn rfc_two_blocks() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..300u16).map(|i| (i & 0xff) as u8).collect();
        let mut h = Sha1::new();
        h.update(&data[..100]);
        h.update(&data[100..]);
        assert_eq!(h.finalize(), Sha1::digest(&data));
    }
}
