//! HKDF-SHA256 (RFC 5869) — extract-and-expand key derivation.
//!
//! Used by the proactive recovery scheduler to re-derive the pairwise
//! key table on every rotation epoch: `HKDF(master, epoch)` yields a
//! fresh key matrix, so keys an intruder may have exfiltrated before
//! its host was wiped stop authenticating traffic once the grace
//! window closes. Built directly on the crate's [`Hmac`]`<Sha256>` —
//! no external dependencies.

use crate::hmac::Hmac;
use crate::sha256::Sha256;

/// Output length of the underlying hash (SHA-256).
pub const HASH_LEN: usize = 32;

/// HKDF-Extract: `PRK = HMAC-Hash(salt, IKM)`.
///
/// An empty `salt` is treated as `HASH_LEN` zero bytes, per RFC 5869
/// §2.2.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; HASH_LEN] {
    const ZERO_SALT: [u8; HASH_LEN] = [0u8; HASH_LEN];
    let salt = if salt.is_empty() {
        &ZERO_SALT[..]
    } else {
        salt
    };
    Hmac::<Sha256>::mac(salt, ikm)
}

/// HKDF-Expand: grows `prk` into `out.len()` bytes of output keying
/// material bound to `info`, per RFC 5869 §2.3.
///
/// # Panics
///
/// Panics if `out.len() > 255 * HASH_LEN` (the RFC's hard limit) —
/// callers in this crate derive at most one key table row at a time,
/// far below the bound.
pub fn expand(prk: &[u8; HASH_LEN], info: &[u8], out: &mut [u8]) {
    assert!(
        out.len() <= 255 * HASH_LEN,
        "HKDF output length exceeds RFC 5869 bound"
    );
    let mut t: [u8; HASH_LEN] = [0u8; HASH_LEN];
    let mut t_len = 0usize;
    let mut counter = 1u8;
    let mut written = 0usize;
    while written < out.len() {
        let mut mac = Hmac::<Sha256>::new(prk);
        mac.update(&t[..t_len]);
        mac.update(info);
        mac.update(&[counter]);
        t = mac.finalize();
        t_len = HASH_LEN;
        let take = (out.len() - written).min(HASH_LEN);
        out[written..written + take].copy_from_slice(&t[..take]);
        written += take;
        // Only bump the counter when another block is coming: at the
        // RFC's 255-block maximum the counter ends at 255, and an
        // unconditional final increment would overflow the u8.
        if written < out.len() {
            counter += 1;
        }
    }
}

/// One-shot extract-then-expand producing `N` bytes.
pub fn derive<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
    let prk = extract(salt, ikm);
    let mut out = [0u8; N];
    expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 Appendix A, Test Case 1 (SHA-256, basic).
    #[test]
    fn rfc5869_test_case_1() {
        let ikm = unhex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            prk.to_vec(),
            unhex("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            okm.to_vec(),
            unhex(
                "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
                 34007208d5b887185865"
            )
        );
    }

    // RFC 5869 Appendix A, Test Case 2 (SHA-256, longer inputs/outputs).
    #[test]
    fn rfc5869_test_case_2() {
        let ikm = unhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f\
             202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f\
             404142434445464748494a4b4c4d4e4f",
        );
        let salt = unhex(
            "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f\
             808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f\
             a0a1a2a3a4a5a6a7a8a9aaabacadaeaf",
        );
        let info = unhex(
            "b0b1b2b3b4b5b6b7b8b9babbbcbdbebfc0c1c2c3c4c5c6c7c8c9cacbcccdcecf\
             d0d1d2d3d4d5d6d7d8d9dadbdcdddedfe0e1e2e3e4e5e6e7e8e9eaebecedeeef\
             f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff",
        );
        let prk = extract(&salt, &ikm);
        let mut okm = [0u8; 82];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            okm.to_vec(),
            unhex(
                "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
                 59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
                 cc30c58179ec3e87c14c01d5c1f3434f1d87"
            )
        );
    }

    // RFC 5869 Appendix A, Test Case 3 (SHA-256, zero-length salt/info).
    #[test]
    fn rfc5869_test_case_3() {
        let ikm = unhex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
        let prk = extract(&[], &ikm);
        let mut okm = [0u8; 42];
        expand(&prk, &[], &mut okm);
        assert_eq!(
            okm.to_vec(),
            unhex(
                "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
                 9d201395faa4b61a96c8"
            )
        );
    }

    #[test]
    fn maximum_length_output_is_reachable() {
        // 255 blocks is the RFC 5869 ceiling; producing the final block
        // must not overflow the u8 counter.
        let prk = extract(b"salt", b"ikm");
        let mut okm = vec![0u8; 255 * HASH_LEN];
        expand(&prk, b"info", &mut okm);
        // Expand is prefix-consistent: a shorter output is a prefix of
        // a longer one over the same prk/info.
        let mut short = [0u8; HASH_LEN + 7];
        expand(&prk, b"info", &mut short);
        assert_eq!(&okm[..short.len()], &short[..]);
    }

    #[test]
    #[should_panic(expected = "RFC 5869 bound")]
    fn over_limit_output_rejected() {
        let prk = extract(b"salt", b"ikm");
        let mut okm = vec![0u8; 255 * HASH_LEN + 1];
        expand(&prk, b"info", &mut okm);
    }

    #[test]
    fn derive_is_extract_then_expand() {
        let okm: [u8; 32] = derive(b"salt", b"master", b"epoch-7");
        let prk = extract(b"salt", b"master");
        let mut expect = [0u8; 32];
        expand(&prk, b"epoch-7", &mut expect);
        assert_eq!(okm, expect);
        // Different info ⇒ unrelated output.
        let other: [u8; 32] = derive(b"salt", b"master", b"epoch-8");
        assert_ne!(okm, other);
    }
}
