//! Pairwise shared secret keys.
//!
//! The paper's model (§2): "Each pair of processes (p_i, p_j) shares a
//! secret key s_ij. It is out of the scope of the paper to present a
//! solution for distributing these keys, but it may require a trusted
//! dealer…". We provide exactly that: a [`KeyTable`] per process, and a
//! deterministic [`KeyTable::dealer`] constructor that derives the full
//! pairwise key matrix from a master seed (for tests, simulation and the
//! examples — a production deployment would load dealt keys instead).

use crate::digest::Digest;
use crate::sha256::Sha256;

/// Length of a shared secret key in bytes.
pub const KEY_LEN: usize = 32;

/// A pairwise shared secret `s_ij`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecretKey([u8; KEY_LEN]);

impl SecretKey {
    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        SecretKey(bytes)
    }

    /// The raw key bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }
}

impl AsRef<[u8]> for SecretKey {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl core::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(..)")
    }
}

/// The pairwise keys held by one process: `s_ij` for every peer `j`.
///
/// Keys are symmetric: `s_ij == s_ji`, so the table dealt to process `i`
/// and the table dealt to process `j` agree on the key they share.
///
/// # Example
///
/// ```
/// use ritas_crypto::KeyTable;
///
/// let t0 = KeyTable::dealer(4, 7).view_of(0);
/// let t1 = KeyTable::dealer(4, 7).view_of(1);
/// assert_eq!(t0.key_for(1), t1.key_for(0));
/// assert_ne!(t0.key_for(1), t0.key_for(2));
/// ```
#[derive(Clone, Debug)]
pub struct KeyTable {
    n: usize,
    /// Full symmetric matrix; entry `(i, j)` is `s_ij` (only the upper
    /// triangle is distinct). A per-process *view* exposes one row.
    matrix: Vec<SecretKey>,
}

impl KeyTable {
    /// Acts as the trusted dealer: derives the full `n × n` pairwise key
    /// matrix deterministically from `master_seed`.
    ///
    /// Key derivation is `SHA-256("ritas-key" ‖ seed ‖ min(i,j) ‖ max(i,j))`,
    /// which guarantees symmetry (`s_ij == s_ji`) and pairwise-distinct keys.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn dealer(n: usize, master_seed: u64) -> Self {
        assert!(n > 0, "key table needs at least one process");
        let mut matrix = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let (lo, hi) = (i.min(j) as u64, i.max(j) as u64);
                let digest = Sha256::digest_concat(&[
                    b"ritas-key",
                    &master_seed.to_be_bytes(),
                    &lo.to_be_bytes(),
                    &hi.to_be_bytes(),
                ]);
                matrix.push(SecretKey(digest));
            }
        }
        KeyTable { n, matrix }
    }

    /// Acts as the trusted dealer for one rotation **epoch**: derives the
    /// pairwise key matrix for `(master_seed, epoch)`.
    ///
    /// Epoch `0` is exactly [`KeyTable::dealer`] — existing deployments
    /// and recorded traffic stay valid, and a freshly wiped replica that
    /// has not yet learned the cluster's epoch can still authenticate
    /// enough to be told it (there is no flag day). For `epoch > 0` the
    /// matrix is re-derived through HKDF-SHA256: a per-epoch master
    /// `HKDF(master_seed, "ritas-epoch" ‖ epoch)` is expanded into each
    /// pairwise key, so every proactive-recovery round rotates every
    /// `s_ij` and keys exfiltrated before a wipe stop authenticating
    /// traffic once the grace window closes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn dealer_for_epoch(n: usize, master_seed: u64, epoch: u64) -> Self {
        if epoch == 0 {
            return KeyTable::dealer(n, master_seed);
        }
        assert!(n > 0, "key table needs at least one process");
        let mut info = Vec::with_capacity(b"ritas-epoch".len() + 8);
        info.extend_from_slice(b"ritas-epoch");
        info.extend_from_slice(&epoch.to_be_bytes());
        let prk = crate::hkdf::extract(&info, &master_seed.to_be_bytes());
        let mut matrix = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                let (lo, hi) = (i.min(j) as u64, i.max(j) as u64);
                let mut pair_info = Vec::with_capacity(b"ritas-key".len() + 16);
                pair_info.extend_from_slice(b"ritas-key");
                pair_info.extend_from_slice(&lo.to_be_bytes());
                pair_info.extend_from_slice(&hi.to_be_bytes());
                let mut key = [0u8; KEY_LEN];
                crate::hkdf::expand(&prk, &pair_info, &mut key);
                matrix.push(SecretKey(key));
            }
        }
        KeyTable { n, matrix }
    }

    /// Number of processes the table was dealt for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is empty (never true for a dealt table).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The key shared between processes `i` and `j`, or `None` when either
    /// index is out of range.
    pub fn shared_key(&self, i: usize, j: usize) -> Option<SecretKey> {
        if i < self.n && j < self.n {
            Some(self.matrix[i * self.n + j])
        } else {
            None
        }
    }

    /// Extracts the per-process view held by process `me`.
    ///
    /// # Panics
    ///
    /// Panics if `me >= n`.
    pub fn view_of(&self, me: usize) -> ProcessKeys {
        assert!(me < self.n, "process {me} out of range (n={})", self.n);
        ProcessKeys {
            me,
            keys: (0..self.n).map(|j| self.matrix[me * self.n + j]).collect(),
        }
    }
}

/// Dealer for the keys shared between the replica group and external
/// service *clients* — the client-facing sibling of the pairwise replica
/// [`KeyTable`].
///
/// The paper's model only deals keys among the `n` replicas; an
/// intrusion-tolerant *service* additionally needs every client `c` to
/// share a secret `k_c` with the group, so that client requests and
/// replica replies can be MAC-authenticated end to end. Derivation is
/// deterministic from the same kind of master seed
/// (`SHA-256("ritas-client-key" ‖ seed ‖ c)`), so every replica — and the
/// client itself — derives the same key out-of-band, exactly like the
/// replica table.
///
/// # Example
///
/// ```
/// use ritas_crypto::ClientKeyDealer;
///
/// let d = ClientKeyDealer::new(42);
/// assert_eq!(d.key_of(7), ClientKeyDealer::new(42).key_of(7));
/// assert_ne!(d.key_of(7), d.key_of(8));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ClientKeyDealer {
    master_seed: u64,
}

impl ClientKeyDealer {
    /// Creates a dealer for `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        ClientKeyDealer { master_seed }
    }

    /// The key shared between client `client` and every replica.
    pub fn key_of(&self, client: u64) -> SecretKey {
        let digest = Sha256::digest_concat(&[
            b"ritas-client-key",
            &self.master_seed.to_be_bytes(),
            &client.to_be_bytes(),
        ]);
        SecretKey(digest)
    }

    /// The *pairwise* key between client `client` and replica `replica`.
    ///
    /// Service replies are MACed with this key rather than the shared
    /// [`ClientKeyDealer::key_of`]: with one symmetric key for the whole
    /// group, a Byzantine replica could forge replies in its peers'
    /// names and single-handedly fabricate an `f+1` reply quorum.
    /// Pairwise keys restore the paper's point-to-point authentication
    /// model at the client edge.
    pub fn link_key(&self, client: u64, replica: u64) -> SecretKey {
        let digest = Sha256::digest_concat(&[
            b"ritas-client-link",
            &self.master_seed.to_be_bytes(),
            &client.to_be_bytes(),
            &replica.to_be_bytes(),
        ]);
        SecretKey(digest)
    }
}

/// The row of the key matrix belonging to a single process: its shared key
/// with every peer.
#[derive(Clone, Debug)]
pub struct ProcessKeys {
    me: usize,
    keys: Vec<SecretKey>,
}

impl ProcessKeys {
    /// Builds a view directly from dealt keys (production path).
    pub fn from_keys(me: usize, keys: Vec<SecretKey>) -> Self {
        ProcessKeys { me, keys }
    }

    /// This process's identifier.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the view holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key shared with peer `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn key_for(&self, j: usize) -> SecretKey {
        self.keys[j]
    }

    /// The key shared with peer `j`, or `None` if out of range.
    pub fn get(&self, j: usize) -> Option<SecretKey> {
        self.keys.get(j).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_keys() {
        let t = KeyTable::dealer(7, 123);
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(t.shared_key(i, j), t.shared_key(j, i));
            }
        }
    }

    #[test]
    fn pairwise_distinct() {
        let t = KeyTable::dealer(5, 9);
        let mut seen = std::collections::HashSet::new();
        for i in 0..5 {
            for j in i..5 {
                assert!(
                    seen.insert(*t.shared_key(i, j).unwrap().as_bytes()),
                    "key ({i},{j}) repeated"
                );
            }
        }
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = KeyTable::dealer(4, 1);
        let b = KeyTable::dealer(4, 2);
        assert_ne!(a.shared_key(0, 1), b.shared_key(0, 1));
    }

    #[test]
    fn deterministic() {
        let a = KeyTable::dealer(4, 5);
        let b = KeyTable::dealer(4, 5);
        assert_eq!(a.shared_key(2, 3), b.shared_key(2, 3));
    }

    #[test]
    fn epoch_zero_is_the_legacy_dealer() {
        let legacy = KeyTable::dealer(4, 42);
        let epoch0 = KeyTable::dealer_for_epoch(4, 42, 0);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(legacy.shared_key(i, j), epoch0.shared_key(i, j));
            }
        }
    }

    #[test]
    fn epoch_tables_are_symmetric_distinct_and_deterministic() {
        let e1 = KeyTable::dealer_for_epoch(5, 42, 1);
        let e2 = KeyTable::dealer_for_epoch(5, 42, 2);
        for i in 0..5 {
            for j in 0..5 {
                // Symmetry within an epoch.
                assert_eq!(e1.shared_key(i, j), e1.shared_key(j, i));
                // Every pairwise key rotates between epochs.
                assert_ne!(e1.shared_key(i, j), e2.shared_key(i, j));
            }
        }
        // Same (seed, epoch) re-derives the same table out-of-band.
        let again = KeyTable::dealer_for_epoch(5, 42, 1);
        assert_eq!(e1.shared_key(2, 3), again.shared_key(2, 3));
        // Different seeds diverge within the same epoch.
        assert_ne!(
            KeyTable::dealer_for_epoch(5, 43, 1).shared_key(0, 1),
            e1.shared_key(0, 1)
        );
        // Pairwise-distinct within an epoch.
        let mut seen = std::collections::HashSet::new();
        for i in 0..5 {
            for j in i..5 {
                assert!(seen.insert(*e1.shared_key(i, j).unwrap().as_bytes()));
            }
        }
    }

    #[test]
    fn out_of_range_is_none() {
        let t = KeyTable::dealer(4, 5);
        assert!(t.shared_key(0, 4).is_none());
        assert!(t.shared_key(4, 0).is_none());
    }

    #[test]
    fn view_matches_matrix() {
        let t = KeyTable::dealer(6, 77);
        for me in 0..6 {
            let v = t.view_of(me);
            assert_eq!(v.me(), me);
            assert_eq!(v.len(), 6);
            for j in 0..6 {
                assert_eq!(Some(v.key_for(j)), t.shared_key(me, j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn view_of_out_of_range_panics() {
        KeyTable::dealer(3, 0).view_of(3);
    }

    #[test]
    fn client_keys_deterministic_distinct_and_separate_from_replica_keys() {
        let d = ClientKeyDealer::new(11);
        assert_eq!(d.key_of(3), ClientKeyDealer::new(11).key_of(3));
        assert_ne!(d.key_of(3), d.key_of(4));
        assert_ne!(d.key_of(3), ClientKeyDealer::new(12).key_of(3));
        // Domain separation: a client key never collides with a replica
        // pairwise key dealt from the same seed.
        let t = KeyTable::dealer(4, 11);
        for i in 0..4 {
            for j in 0..4 {
                assert_ne!(Some(d.key_of(i as u64)), t.shared_key(i, j));
            }
        }
    }

    #[test]
    fn link_keys_pairwise_distinct() {
        let d = ClientKeyDealer::new(5);
        assert_eq!(d.link_key(1, 2), ClientKeyDealer::new(5).link_key(1, 2));
        assert_ne!(d.link_key(1, 2), d.link_key(1, 3));
        assert_ne!(d.link_key(1, 2), d.link_key(2, 2));
        // Never equal to the client's group key (distinct derivation
        // label), so compromising one never reveals the other.
        assert_ne!(d.link_key(1, 2), d.key_of(1));
    }

    #[test]
    fn debug_hides_key_material() {
        let t = KeyTable::dealer(2, 0);
        let s = format!("{:?}", t.shared_key(0, 1).unwrap());
        assert_eq!(s, "SecretKey(..)");
    }
}
