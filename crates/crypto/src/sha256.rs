//! From-scratch SHA-256 (FIPS 180-4).
//!
//! This is the default hash `H` for the stack's MACs. The implementation is
//! a straightforward, dependency-free rendition of the standard, pinned by
//! the NIST example vectors in the test module below.

use crate::digest::Digest;

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use ritas_crypto::{Digest, Sha256};
///
/// let digest = Sha256::digest(b"abc");
/// assert_eq!(digest[..4], [0xba, 0x78, 0x16, 0xbf]);
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes processed so far (excluding `buf`).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }
}

impl Sha256 {
    fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

impl Digest for Sha256 {
    const OUTPUT_LEN: usize = 32;
    const BLOCK_LEN: usize = 64;
    type Output = [u8; 32];

    fn update(&mut self, mut data: &[u8]) {
        // Fill the pending block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                Self::compress(&mut self.state, &block);
                self.len += 64;
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            Self::compress(&mut self.state, &block);
            self.len += 64;
            data = &data[64..];
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize(mut self) -> [u8; 32] {
        let total_bits = (self.len + self.buf_len as u64) * 8;
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&total_bits.to_be_bytes());
        self.update_padding(&pad[..pad_len + 8]);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

impl Sha256 {
    /// `update` without the borrow conflict during finalization.
    fn update_padding(&mut self, data: &[u8]) {
        let mut tmp = Sha256 {
            state: self.state,
            len: self.len,
            buf: self.buf,
            buf_len: self.buf_len,
        };
        tmp.update(data);
        debug_assert_eq!(tmp.buf_len, 0, "padding must complete the final block");
        self.state = tmp.state;
        self.len = tmp.len;
        self.buf_len = tmp.buf_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST FIPS 180-4 example vectors + RFC-style extras.
    #[test]
    fn nist_empty() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_blocks() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exact_block_lengths() {
        // 55/56/64 bytes are the padding edge cases.
        let expected_55 = "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318";
        assert_eq!(hex(&Sha256::digest(&[b'a'; 55])), expected_55);
        let expected_56 = "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a";
        assert_eq!(hex(&Sha256::digest(&[b'a'; 56])), expected_56);
        let expected_64 = "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb";
        assert_eq!(hex(&Sha256::digest(&[b'a'; 64])), expected_64);
    }

    #[test]
    fn incremental_byte_at_a_time() {
        let mut h = Sha256::new();
        for b in b"abc" {
            h.update(&[*b]);
        }
        assert_eq!(h.finalize(), Sha256::digest(b"abc"));
    }
}
