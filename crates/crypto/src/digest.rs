//! A minimal incremental-hashing trait shared by [`crate::Sha1`] and
//! [`crate::Sha256`].
//!
//! The trait exists so that higher layers ([`crate::Hmac`], the MAC helpers
//! in [`crate::mac`]) can be written once, generic over the hash function,
//! mirroring how the paper treats `H` as an abstract collision-resistant
//! function (§2, "Some protocols use a cryptographic hash function H(m)…").

/// An incremental cryptographic hash function.
///
/// Implementations process input in arbitrary-size chunks via
/// [`Digest::update`] and produce a fixed-size output via
/// [`Digest::finalize`].
///
/// # Example
///
/// ```
/// use ritas_crypto::{Digest, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), Sha256::digest(b"hello world"));
/// ```
pub trait Digest: Default + Clone {
    /// Size of the final digest in bytes.
    const OUTPUT_LEN: usize;
    /// Size of the internal compression-function block in bytes.
    const BLOCK_LEN: usize;
    /// Digest output type (a fixed-size byte array).
    type Output: AsRef<[u8]> + Copy + Eq + core::fmt::Debug;

    /// Creates a fresh hasher.
    fn new() -> Self {
        Self::default()
    }

    /// Absorbs `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest.
    fn finalize(self) -> Self::Output;

    /// One-shot convenience: hash `data` in a single call.
    fn digest(data: &[u8]) -> Self::Output {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes the concatenation of several byte slices.
    ///
    /// Used for the paper's `H(m, s_ij)` MAC where the message and the
    /// shared secret are concatenated before hashing (§2.3).
    fn digest_concat(parts: &[&[u8]]) -> Self::Output {
        let mut h = Self::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }
}

/// Constant-time equality comparison of two byte slices.
///
/// Returns `false` if lengths differ. Used by MAC verification to avoid
/// leaking the position of the first mismatching byte through timing.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sha1, Sha256};

    #[test]
    fn ct_eq_equal() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn ct_eq_unequal_content() {
        assert!(!ct_eq(b"abc", b"abd"));
    }

    #[test]
    fn ct_eq_unequal_len() {
        assert!(!ct_eq(b"abc", b"abcd"));
    }

    #[test]
    fn digest_concat_matches_single_update() {
        let parts: [&[u8]; 3] = [b"a", b"bc", b"def"];
        assert_eq!(Sha256::digest_concat(&parts), Sha256::digest(b"abcdef"));
        assert_eq!(Sha1::digest_concat(&parts), Sha1::digest(b"abcdef"));
    }

    #[test]
    fn incremental_equals_oneshot_across_block_boundary() {
        // 200 bytes crosses the 64-byte block boundary several times.
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 128, 199, 200] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split={split}");
        }
    }
}
